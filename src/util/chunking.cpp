#include "util/chunking.h"

#include <algorithm>

#include "util/check.h"

namespace drcell::util {

std::vector<std::size_t> chunk_bounds(std::size_t count, std::size_t lanes,
                                      std::size_t total_weight,
                                      const std::vector<std::size_t>& weight,
                                      const ChunkPolicy& policy) {
  DRCELL_DCHECK(weight.size() == count);
  std::vector<std::size_t> bounds{0};
  const std::size_t max_chunks =
      std::min(count, std::max<std::size_t>(1, lanes) *
                          std::max<std::size_t>(1, policy.max_chunks_per_lane));
  const std::size_t per_chunk =
      std::max(policy.min_weight_per_chunk,
               max_chunks ? (total_weight + max_chunks - 1) / max_chunks
                          : total_weight);
  std::size_t acc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    acc += weight[i];
    if (acc >= per_chunk && i + 1 < count) {
      bounds.push_back(i + 1);
      acc = 0;
    }
  }
  bounds.push_back(count);
  return bounds;
}

}  // namespace drcell::util
