// Statistical helpers shared by the quality assessor, dataset generators
// and the benchmark harness: moments, quantiles, distribution CDFs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace drcell {

/// Streaming mean/variance via Welford's algorithm.
class RunningStats {
 public:
  void add(double x);
  /// Number of samples added so far.
  std::size_t count() const { return n_; }
  /// Sample mean; 0 when empty.
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  /// sqrt(variance()).
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Merge another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
/// Unbiased sample variance; 0 for fewer than two samples.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
/// Linear-interpolation quantile, q in [0, 1]. Requires non-empty input.
double quantile(std::vector<double> xs, double q);
double median(std::vector<double> xs);
/// Pearson correlation; 0 if either side is constant. Sizes must match.
double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys);

/// Standard normal CDF Φ(x).
double normal_cdf(double x);
/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9). Requires p in (0, 1).
double normal_quantile(double p);

/// log Γ(x) for x > 0 (Lanczos approximation).
double log_gamma(double x);
/// CDF of Student's t distribution with `dof` degrees of freedom.
/// Used by the quality assessor's posterior predictive (small LOO samples).
double student_t_cdf(double t, double dof);
/// Regularised incomplete beta function I_x(a, b) for x in [0,1], a,b > 0.
/// This is the CDF of the Beta(a, b) distribution — used by the Bayesian
/// quality assessor for classification error metrics.
double incomplete_beta(double a, double b, double x);

}  // namespace drcell
