// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// check of the DRCK v2 checkpoint format (core/checkpoint.h). Table-driven,
// byte at a time; checkpoint payloads are megabytes at most, so throughput
// is irrelevant next to the weight serialisation around it.
#pragma once

#include <cstddef>
#include <cstdint>

namespace drcell::util {

/// CRC of `len` bytes at `data`. `crc` chains partial computations:
/// crc32(b, crc32(a)) == crc32(a+b). The empty-input CRC is 0, and
/// crc32("123456789") == 0xCBF43926 (the standard check value).
std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t crc = 0);

}  // namespace drcell::util
