#include "util/checksum.h"

#include <array>

namespace drcell::util {

namespace {
std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

}  // namespace drcell::util
