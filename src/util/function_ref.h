// Non-owning type-erased callable reference.
//
// `FunctionRef<void(std::size_t)>` is the parameter type used by
// ThreadPool::parallel_for and friends. Unlike `std::function` it never
// allocates and never copies the target: it stores one object pointer plus
// one trampoline function pointer, so passing a capturing lambda into a hot
// dispatch loop costs two words on the stack. The referenced callable must
// outlive the FunctionRef — callers pass lambdas whose lifetime spans the
// whole parallel_for, which every call site in this repo already does. Do
// not store a FunctionRef beyond the call that received it.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace drcell::util {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>,
                                FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace drcell::util
