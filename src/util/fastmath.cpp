#include "util/fastmath.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

// The array kernels are cloned per ISA (AVX2 + baseline) so the one shipped
// binary vectorises 4-wide where the hardware allows without baking an -march
// into the build. Every clone runs the identical IEEE-754 expression graph
// (this file is compiled with -ffp-contract=off — see CMakeLists.txt), so
// the variants are bit-identical; the clone only changes vector width.
// target_clones needs ifunc dispatch, i.e. an x86-64 ELF target (GCC, or
// Clang >= 14); elsewhere the kernels compile as the single baseline-ISA
// path with the same bit-exact results — only the lstm_gate_pass speedup
// margin shrinks (use --no-perf-gate on such hosts, bench/README.md).
#if defined(__x86_64__) && defined(__ELF__) && \
    (defined(__clang__) ? (__clang_major__ >= 14) : defined(__GNUC__))
#define DRCELL_FASTMATH_CLONES \
  __attribute__((target_clones("avx2", "default")))
#else
#define DRCELL_FASTMATH_CLONES
#endif

namespace drcell::fastmath {

namespace {

constexpr double kLog2e = 1.4426950408889634074;
// Cody–Waite split of ln2: kLn2Hi carries ~38 significant bits, so
// k · kLn2Hi is exact for |k| ≤ 2^11 and the reduced argument
// r = x − k·ln2 keeps full precision.
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
// 1.5 · 2^52: adding it rounds x·log2e to the nearest integer in the low
// mantissa bits (round-to-nearest-even), recoverable both as a double
// (kd − kShift) and as an int64 (bit-pattern difference).
constexpr double kShift = 6755399441055744.0;
// Domain clamps. Below kUnderflow the result flushes to 0 (k stays ≥ -1022
// so the single-step 2^k exponent assembly of the nonpositive helpers is a
// normal double; the subnormal tail of std::exp is not reproduced). Above
// kOverflow the result is +inf — the clamp sits just past the IEEE overflow
// threshold (~709.783), and exp_one's split 2^hi·2^lo scaling evaluates the
// stretch up to it correctly, so fastmath::exp overflows exactly where
// std::exp does (within the polynomial tolerance).
constexpr double kUnderflow = -708.0;
constexpr double kOverflow = 710.0;

/// expm1(r) on the reduced range |r| ≤ ln2/2 ≈ 0.3466: Taylor/Horner,
/// expm1(r) = r + r²·q(r) with q(r) = Σ_{m=0}^{10} r^m/(m+2)!. The series
/// truncation error is r^13/13! ≤ 1.7e-16 absolute on the range; the form
/// r + r²·q keeps the leading term exact, so small arguments (including
/// denormals, whose r² underflows to 0) pass through with no cancellation.
inline double expm1_poly(double r) {
  double q = 1.0 / 479001600.0;  // 1/12!
  q = q * r + 1.0 / 39916800.0;  // 1/11!
  q = q * r + 1.0 / 3628800.0;   // 1/10!
  q = q * r + 1.0 / 362880.0;    // 1/9!
  q = q * r + 1.0 / 40320.0;     // 1/8!
  q = q * r + 1.0 / 5040.0;      // 1/7!
  q = q * r + 1.0 / 720.0;       // 1/6!
  q = q * r + 1.0 / 120.0;       // 1/5!
  q = q * r + 1.0 / 24.0;        // 1/4!
  q = q * r + 1.0 / 6.0;         // 1/3!
  q = q * r + 0.5;               // 1/2!
  return r + (r * r) * q;
}

struct Reduction {
  double r;        ///< x − k·ln2, |r| ≤ ln2/2
  std::int64_t k;  ///< the subtracted ln2 multiple
};

/// Branch-free range reduction. Requires x ∈ [kUnderflow, kOverflow]; the
/// callers clamp first and patch the out-of-range/special lanes with
/// selects afterwards. Deliberately avoids int↔fp conversions (no direct
/// 64-bit conversion before AVX-512): kf is recovered as kd − kShift and
/// the integer k only ever feeds exponent bit assembly.
inline Reduction reduce(double x) {
  const double kd = x * kLog2e + kShift;
  const double kf = kd - kShift;
  const std::int64_t k =
      std::bit_cast<std::int64_t>(kd) - std::bit_cast<std::int64_t>(kShift);
  double r = x - kf * kLn2Hi;
  r -= kf * kLn2Lo;
  return {r, k};
}

/// 2^k by exponent bit assembly; requires k ∈ [-1022, 1023] (normal range).
inline double pow2(std::int64_t k) {
  return std::bit_cast<double>(static_cast<std::uint64_t>(1023 + k) << 52);
}

/// e^x for clamped finite x. The scale is applied as 2^hi · 2^lo (each half
/// within the normal exponent range for k ∈ [-1022, 1024]), so the stretch
/// between 2^1023·e^r and the IEEE overflow threshold evaluates correctly
/// and anything beyond it overflows to +inf exactly where std::exp does.
inline double exp_core(double x) {
  const Reduction red = reduce(x);
  const std::int64_t hi = (red.k + 1) >> 1;  // ceil(k/2)
  const std::int64_t lo = red.k - hi;
  return (expm1_poly(red.r) + 1.0) * pow2(hi) * pow2(lo);
}

/// exp(x) for x ≤ 0 with the underflow lane patched (NaN propagates through
/// the untaken clamp branch). Single-step scaling: the clamp keeps
/// k ≥ -1022, so 2^k is always a normal double here.
inline double exp_nonpos(double x) {
  const double xc = x < kUnderflow ? kUnderflow : x;
  const Reduction red = reduce(xc);
  const double e = (expm1_poly(red.r) + 1.0) * pow2(red.k);
  return x < kUnderflow ? 0.0 : e;
}

/// expm1(u) for u ≤ 0: 2^k·expm1(r) + (2^k − 1). The second term is exact
/// for k ≥ −52 and the first is ≤ 0.41·2^k, so the sum never cancels more
/// than one bit; for u below the clamp both terms collapse to −1 exactly.
inline double expm1_nonpos(double u) {
  const double uc = u < kUnderflow ? kUnderflow : u;
  const Reduction red = reduce(uc);
  const double scale = pow2(red.k);
  return scale * expm1_poly(red.r) + (scale - 1.0);
}

inline double exp_one(double x) {
  const double xlo = x < kUnderflow ? kUnderflow : x;
  const double xc = xlo > kOverflow ? kOverflow : xlo;
  double e = exp_core(xc);
  e = x < kUnderflow ? 0.0 : e;
  e = x > kOverflow ? std::numeric_limits<double>::infinity() : e;
  // NaN input: every select above is untaken, exp_core's garbage k still
  // multiplies into a NaN polynomial, so NaN propagates.
  return e;
}

inline double tanh_one(double x) {
  const double em1 = expm1_nonpos(-2.0 * std::fabs(x));
  const double t = -em1 / (2.0 + em1);
  return std::copysign(t, x);  // keeps ±0 and NaN
}

inline double sigmoid_one(double x) {
  const double e = exp_nonpos(-std::fabs(x));
  const double num = x >= 0.0 ? 1.0 : e;  // NaN lane: num = e = NaN
  return num / (1.0 + e);
}

}  // namespace

double exp(double x) { return exp_one(x); }
double tanh(double x) { return tanh_one(x); }
double sigmoid(double x) { return sigmoid_one(x); }

DRCELL_FASTMATH_CLONES
void exp_array(const double* src, double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = exp_one(src[i]);
}

DRCELL_FASTMATH_CLONES
void tanh_array(const double* src, double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = tanh_one(src[i]);
}

DRCELL_FASTMATH_CLONES
void sigmoid_array(const double* src, double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = sigmoid_one(src[i]);
}

DRCELL_FASTMATH_CLONES
void dtanh_from_output_array(const double* y, const double* grad, double* dst,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = grad[i] * (1.0 - y[i] * y[i]);
}

DRCELL_FASTMATH_CLONES
void dsigmoid_from_output_array(const double* y, const double* grad,
                                double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = grad[i] * (y[i] * (1.0 - y[i]));
}

}  // namespace drcell::fastmath
