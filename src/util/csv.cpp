#include "util/csv.h"

#include <charconv>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace drcell {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) {
    std::ostringstream ss;
    ss.precision(17);
    ss << v;
    fields.push_back(ss.str());
  }
  write_row(fields);
}

std::vector<std::vector<std::string>> CsvReader::parse(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // the next field exists even if empty
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  DRCELL_CHECK_MSG(!in_quotes, "CSV ended inside a quoted field");
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

std::vector<std::vector<std::string>> CsvReader::parse_stream(
    std::istream& in) {
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

std::vector<double> parse_double_row(const std::vector<std::string>& row) {
  std::vector<double> out;
  out.reserve(row.size());
  for (const std::string& f : row) {
    double v = 0.0;
    const auto* begin = f.data();
    const auto* end = f.data() + f.size();
    auto [ptr, ec] = std::from_chars(begin, end, v);
    DRCELL_CHECK_MSG(ec == std::errc() && ptr == end,
                     "malformed numeric CSV field: '" + f + "'");
    out.push_back(v);
  }
  return out;
}

}  // namespace drcell
