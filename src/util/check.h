// Lightweight precondition / invariant checking for the drcell libraries.
//
// DRCELL_CHECK is always on (also in release builds): the library is a
// research artefact and silent state corruption is far more expensive than
// a branch. Violations throw, so callers and tests can observe them.
#pragma once

#include <stdexcept>
#include <string>

namespace drcell {

/// Thrown when a DRCELL_CHECK precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::string full = std::string("DRCELL_CHECK failed: ") + expr + " at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw CheckError(full);
}
}  // namespace detail

}  // namespace drcell

#define DRCELL_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::drcell::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define DRCELL_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr))                                                        \
      ::drcell::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

// DRCELL_DCHECK: per-element checks on hot loops (matrix indexing, span
// accessors). Active in debug builds and whenever DRCELL_ENABLE_DCHECKS is
// defined (the CI DCHECK job); compiled to nothing in plain release builds so
// the hot paths run unchecked. Structural preconditions (shape mismatches,
// empty inputs) stay on DRCELL_CHECK — they run once per call, not per
// element, and silent corruption there is never worth the saved branch.
#if !defined(NDEBUG) || defined(DRCELL_ENABLE_DCHECKS)
#define DRCELL_DCHECKS_ACTIVE 1
#define DRCELL_DCHECK(expr) DRCELL_CHECK(expr)
#define DRCELL_DCHECK_MSG(expr, msg) DRCELL_CHECK_MSG(expr, msg)
#else
#define DRCELL_DCHECKS_ACTIVE 0
#define DRCELL_DCHECK(expr) \
  do {                      \
    (void)sizeof((expr));   \
  } while (false)
#define DRCELL_DCHECK_MSG(expr, msg) \
  do {                               \
    (void)sizeof((expr));            \
    (void)sizeof((msg));             \
  } while (false)
#endif
