// Small reusable thread pool for the library's fan-out hot paths (committee
// inference, DQN batch forwards, benches).
//
// Design points:
//  * The calling thread participates in parallel_for, so a pool constructed
//    with 0 workers degrades to plain serial execution with no queue traffic
//    — that is also the default on single-core machines.
//  * Results are deterministic: parallel_for indexes are handed out in order
//    and callers write results by index, so the output layout never depends
//    on thread scheduling.
//  * Stochastic tasks get a per-task Rng derived from (seed, index) via
//    SplitMix64, making randomised fan-outs reproducible regardless of the
//    worker count.
//  * The first exception thrown by any task is captured and rethrown on the
//    calling thread after the loop drains (remaining tasks still run).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace drcell::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads. The default sizes the pool so that workers
  /// plus the participating caller equal the hardware concurrency.
  explicit ThreadPool(std::size_t workers = default_worker_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, n), distributing indices over the workers
  /// and the calling thread. Blocks until all calls return. Rethrows the
  /// first task exception on the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// parallel_for variant for stochastic tasks: fn additionally receives an
  /// Rng seeded deterministically from (seed, i), so results do not depend
  /// on which thread runs which index.
  void parallel_for_seeded(
      std::uint64_t seed, std::size_t n,
      const std::function<void(std::size_t, Rng&)>& fn);

  /// hardware_concurrency - 1 (the caller is the remaining lane), at least 0.
  static std::size_t default_worker_count();

  /// Process-wide shared pool used by the library hot paths.
  static ThreadPool& global();

 private:
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t next = 0;       // next index to claim
    std::size_t completed = 0;  // indices fully processed
    std::exception_ptr error;
  };

  void worker_loop();
  // Claims and runs indices of the current batch until exhausted; returns
  // once every index has been *claimed* (caller then waits for completion).
  void drain_batch(Batch& batch, std::unique_lock<std::mutex>& lock);

  // Serialises whole batches; a parallel_for arriving while another is in
  // flight simply runs serially instead of queueing behind it.
  std::mutex submission_mutex_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  Batch* batch_ = nullptr;  // non-null while a parallel_for is active
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace drcell::util
