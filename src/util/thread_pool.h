// Small reusable thread pool for the library's fan-out hot paths (committee
// inference, DQN batch forwards, ALS half-sweeps, the LOO quality gate,
// benches).
//
// Design points:
//  * The calling thread participates in parallel_for, so a pool constructed
//    with 0 workers degrades to plain serial execution with no queue traffic
//    — that is also the default on single-core machines.
//  * Results are deterministic: parallel_for indexes are handed out in order
//    and callers write results by index, so the output layout never depends
//    on thread scheduling.
//  * Stochastic tasks get a per-task Rng derived from (seed, index) via
//    SplitMix64, making randomised fan-outs reproducible regardless of the
//    worker count.
//  * The first exception thrown by any task is captured and rethrown on the
//    calling thread after the loop drains (remaining tasks still run).
//
// Determinism contract for pooled callers. Every hot path in this library
// that fans out over the pool guarantees bit-identical results for ANY
// worker count (0-worker serial included), and new pooled paths must uphold
// the same three invariants:
//  1. Index-exclusive writes: task i writes only to output slot(s) derived
//     from i; shared inputs are immutable for the duration of the
//     parallel_for. No atomics-as-accumulators, no locks around arithmetic.
//  2. Index-ordered reduction: anything that combines per-task values
//     (sums, maxima, convergence stats) is stored per index during the
//     parallel phase and folded serially in ascending index order after the
//     loop returns — floating-point addition is not associative, so
//     claim-order accumulation would make results scheduling-dependent.
//  3. Seeded per-task RNG: stochastic tasks derive their stream from
//     (seed, index) via parallel_for_seeded — never from the executing
//     thread or a shared generator.
// Chunking for load balance is fine as long as chunk boundaries only group
// tasks and never change the arithmetic (see the ALS/LOO chunking in
// cs/matrix_completion.cpp for the reference pattern). The bit-identity is
// enforced by tests (tests/sparse_paths_test.cpp, tests/thread_pool_test.cpp).
//
// Nested parallel_for calls (a pooled task fanning out again, or a second
// thread submitting while a batch is in flight) run inline/serially instead
// of deadlocking — correctness never depends on actual parallelism.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace drcell::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads. The default sizes the pool so that workers
  /// plus the participating caller equal the hardware concurrency.
  explicit ThreadPool(std::size_t workers = default_worker_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, n), distributing indices over the workers
  /// and the calling thread. Blocks until all calls return. Rethrows the
  /// first task exception on the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// parallel_for variant for stochastic tasks: fn additionally receives an
  /// Rng seeded deterministically from (seed, i), so results do not depend
  /// on which thread runs which index.
  void parallel_for_seeded(
      std::uint64_t seed, std::size_t n,
      const std::function<void(std::size_t, Rng&)>& fn);

  /// hardware_concurrency - 1 (the caller is the remaining lane), at least 0.
  static std::size_t default_worker_count();

  /// Process-wide shared pool used by the library hot paths.
  static ThreadPool& global();

 private:
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t next = 0;       // next index to claim
    std::size_t completed = 0;  // indices fully processed
    std::exception_ptr error;
  };

  void worker_loop();
  // Claims and runs indices of the current batch until exhausted; returns
  // once every index has been *claimed* (caller then waits for completion).
  void drain_batch(Batch& batch, std::unique_lock<std::mutex>& lock);

  // Serialises whole batches; a parallel_for arriving while another is in
  // flight simply runs serially instead of queueing behind it.
  std::mutex submission_mutex_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  Batch* batch_ = nullptr;  // non-null while a parallel_for is active
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace drcell::util
