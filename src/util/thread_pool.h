// Small reusable thread pool for the library's fan-out hot paths (committee
// inference, DQN batch forwards, ALS half-sweeps, the LOO quality gate, the
// Nyström field sampler, campaign waves, benches).
//
// Design points:
//  * The calling thread participates in parallel_for, so a pool constructed
//    with 0 workers degrades to plain serial execution with no queue traffic
//    — that is also the default on single-core machines.
//  * Dispatch is chunked atomic claiming: lanes grab contiguous index ranges
//    with one `fetch_add` per range instead of taking the batch mutex per
//    index, so ~1µs tasks no longer serialise on dispatch (see the
//    `pool_dispatch_fine_grain` micro bench pair). The chunk size is derived
//    from n and the lane count; claim ORDER is scheduling-dependent, but
//    callers write results by index, so outputs never are.
//  * Callables are taken as non-owning `FunctionRef`s — no `std::function`
//    copy or heap allocation per call site (pinned by a no-allocation
//    assertion in bench_micro_components).
//  * Results are deterministic: callers write results by index, so the
//    output layout never depends on thread scheduling.
//  * Stochastic tasks get a per-task Rng derived from (seed, index) via
//    SplitMix64, making randomised fan-outs reproducible regardless of the
//    worker count.
//  * Exceptions are AGGREGATED, not short-circuited: every task in [0, n)
//    runs even when earlier ones throw (each task body is individually
//    guarded, so a throwing task never skips its chunk-mates). After the
//    batch drains, the FIRST captured exception (in claim order — which
//    exception is "first" under real parallelism is scheduling-dependent;
//    with 0 workers it is the lowest-index one) is rethrown on the calling
//    thread, and `last_batch_error_count()` reports how many tasks threw in
//    that batch. Fault-domain callers that need per-index attribution (the
//    campaign scheduler's wave step) catch inside their own task body
//    instead; the pool-level guarantee is that one bad index cannot
//    silently starve the others.
//
// Determinism contract for pooled callers. Every hot path in this library
// that fans out over the pool guarantees bit-identical results for ANY
// worker count (0-worker serial included), and new pooled paths must uphold
// the same three invariants:
//  1. Index-exclusive writes: task i writes only to output slot(s) derived
//     from i; shared inputs are immutable for the duration of the
//     parallel_for. No atomics-as-accumulators, no locks around arithmetic.
//  2. Index-ordered reduction: anything that combines per-task values
//     (sums, maxima, convergence stats) is stored per index during the
//     parallel phase and folded serially in ascending index order after the
//     loop returns — floating-point addition is not associative, so
//     claim-order accumulation would make results scheduling-dependent.
//  3. Seeded per-task RNG: stochastic tasks derive their stream from
//     (seed, index) via parallel_for_seeded — never from the executing
//     thread or a shared generator.
// Chunking for load balance is fine as long as chunk boundaries only group
// tasks and never change the arithmetic (see util/chunking.h for the shared
// weighted policy used by the ALS/LOO paths in cs/matrix_completion.cpp).
// The bit-identity is enforced by tests (tests/sparse_paths_test.cpp,
// tests/thread_pool_test.cpp, tests/nystrom_field_test.cpp).
//
// Nested parallel_for calls (a pooled task fanning out again, or a second
// thread submitting while a batch is in flight) run inline/serially instead
// of deadlocking — correctness never depends on actual parallelism.
//
// Global pool sizing precedence (highest wins):
//  1. `set_global_worker_count_for_testing(w)` — tears the global pool down
//     and rebuilds it with exactly `w` workers. Test-only: must not race
//     in-flight pooled work.
//  2. `DRCELL_THREADS=<lanes>` — read ONCE at first `global()` use (same
//     read-once discipline as `DRCELL_BACKEND`). The value counts TOTAL
//     lanes including the participating caller, so `DRCELL_THREADS=1` is
//     fully serial (0 workers) and `DRCELL_THREADS=4` spawns 3 workers.
//     Unparsable or `0` values fall back to the default.
//  3. Default: `default_worker_count()` = hardware_concurrency − 1.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "util/function_ref.h"
#include "util/rng.h"

namespace drcell::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads. The default sizes the pool so that workers
  /// plus the participating caller equal the hardware concurrency.
  explicit ThreadPool(std::size_t workers = default_worker_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, n), distributing index ranges over the
  /// workers and the calling thread. Blocks until all calls return. Every
  /// index runs even when some throw; the first captured exception is
  /// rethrown on the caller (see the aggregation contract above). `fn` is
  /// borrowed, not copied — it only needs to live for the duration of this
  /// call.
  void parallel_for(std::size_t n, FunctionRef<void(std::size_t)> fn);

  /// How many tasks of this thread's most recent parallel_for threw (0
  /// after a clean batch). Valid after parallel_for returns or throws;
  /// thread-local, so concurrent submitters see their own counts.
  static std::size_t last_batch_error_count();

  /// parallel_for variant for stochastic tasks: fn additionally receives an
  /// Rng seeded deterministically from (seed, i), so results do not depend
  /// on which thread runs which index.
  void parallel_for_seeded(std::uint64_t seed, std::size_t n,
                           FunctionRef<void(std::size_t, Rng&)> fn);

  /// hardware_concurrency - 1 (the caller is the remaining lane), at least 0.
  static std::size_t default_worker_count();

  /// Process-wide shared pool used by the library hot paths. Sized by the
  /// precedence rules documented at the top of this header.
  static ThreadPool& global();

  /// Rebuilds the global pool with exactly `workers` workers (joins the old
  /// pool first). Overrides DRCELL_THREADS. Test-only: callers must ensure
  /// no pooled work is in flight on the global pool.
  static void set_global_worker_count_for_testing(std::size_t workers);

  /// Parses a DRCELL_THREADS-style total-lane spec ("4" → 3 workers,
  /// "1" → 0 workers). Returns `fallback` for null/empty/unparsable/zero.
  /// Exposed for tests; `global()` applies it to getenv("DRCELL_THREADS").
  static std::size_t workers_from_lanes_spec(const char* spec,
                                             std::size_t fallback);

 private:
  struct Batch {
    Batch(FunctionRef<void(std::size_t)> fn_in, std::size_t n_in,
          std::size_t chunk_in)
        : fn(fn_in), n(n_in), chunk(chunk_in) {}
    const FunctionRef<void(std::size_t)> fn;
    const std::size_t n;
    const std::size_t chunk;            // indices claimed per fetch_add
    std::atomic<std::size_t> next{0};   // next unclaimed index
    std::atomic<std::size_t> completed{0};
    std::size_t drainers = 0;           // workers inside drain() — mutex_
    std::exception_ptr error;           // first task exception — mutex_
    std::size_t error_count = 0;        // tasks that threw — mutex_
  };

  void worker_loop();
  // Claims index ranges of `batch` lock-free until exhausted.
  void drain(Batch& batch);

  // Serialises whole batches; a parallel_for arriving while another is in
  // flight simply runs serially instead of queueing behind it.
  std::mutex submission_mutex_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  Batch* batch_ = nullptr;  // non-null while a parallel_for is active
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace drcell::util
