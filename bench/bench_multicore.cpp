// Multicore scaling bench: the headline pooled ops — the ALS half-sweep
// completion, the leave-one-out quality gate, the Nyström factor build and
// per-draw sampling, the batched DRQN train step, and the multi-campaign
// wave — swept over worker counts {0, 1, 3, ncores-1}. For every op the
// sweep
//   1. self-checks BIT-IDENTITY across all swept worker counts (the pool
//      determinism contract, util/thread_pool.h) and exits non-zero on any
//      divergence, and
//   2. reports per-worker-count wall times plus a `speedup_vs_naive` ratio
//      entry where "naive" is the op's own 0-worker serial run — the ratio
//      IS the pooled speedup at the widest lane count.
//
// Gate policy: the scaling-efficiency floor (>= 1.5x at the widest lane
// count for the gated trio multicore_als_sweep / multicore_loo_gate /
// multicore_nystrom_build) arms only when hardware_concurrency >= 4 — on
// narrower machines the widest sweep point oversubscribes the cores and a
// ~1.0 ratio is expected, not a regression. The committed
// BENCH_multicore.json carries the same property into CI: ratios recorded
// on a narrow baseline box sit below compare_bench.py's --min-baseline
// cutoff, so the CI efficiency comparison stays disarmed until a
// multicore-recorded baseline lands (tools/compare_bench.py,
// bench/README.md). Bit-identity is gated unconditionally.
//
//   ./build/bench_multicore [--quick] [--json [path]] [--no-perf-gate]
//                           [--backend <name>]
#include <algorithm>
#include <cstddef>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/campaign_scheduler.h"
#include "data/synthetic_field.h"
#include "rl/dqn_trainer.h"
#include "rl/drqn_qnetwork.h"
#include "util/thread_pool.h"

namespace {

using namespace drcell;

/// Worker counts to sweep: {0, 1, 3, ncores-1}, deduplicated and sorted.
/// On a 4-core machine 3 == ncores-1; on a 1-core box the widest point runs
/// 3 oversubscribed workers — bit-identity still holds, efficiency is not
/// gated there.
std::vector<std::size_t> sweep_worker_counts() {
  std::vector<std::size_t> workers{0, 1, 3};
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 1) workers.push_back(static_cast<std::size_t>(hw - 1));
  std::sort(workers.begin(), workers.end());
  workers.erase(std::unique(workers.begin(), workers.end()), workers.end());
  return workers;
}

/// Collects one op's per-worker-count measurements and writes the report
/// entries: one plain `<op>_w<k>` entry per swept count plus the `<op>`
/// ratio entry (widest count vs the 0-worker serial run).
class WorkerSweep {
 public:
  WorkerSweep(bench::JsonReporter& report, std::string op)
      : report_(report), op_(std::move(op)) {}

  void add(std::size_t workers, const bench::Measurement& m) {
    runs_.emplace_back(workers, m);
  }

  void finish() {
    for (const auto& [w, m] : runs_)
      report_.add(op_ + "_w" + std::to_string(w), m.wall_ms, m.iterations,
                  1e3 / m.wall_ms);
    const auto& serial = runs_.front();  // the sweep starts at 0 workers
    const auto& widest = runs_.back();
    report_.add_with_reference(op_, widest.second.wall_ms,
                               widest.second.iterations,
                               1e3 / widest.second.wall_ms,
                               serial.second.wall_ms,
                               serial.second.iterations);
    const double speedup = serial.second.wall_ms / widest.second.wall_ms;
    const double lanes = static_cast<double>(widest.first + 1);
    std::cout << op_ << ": serial " << format_double(serial.second.wall_ms, 3)
              << " ms, " << widest.first << " workers "
              << format_double(widest.second.wall_ms, 3) << " ms ("
              << format_double(speedup, 2) << "x, parallel efficiency "
              << format_double(100.0 * speedup / lanes, 0) << "%)\n";
  }

 private:
  bench::JsonReporter& report_;
  std::string op_;
  std::vector<std::pair<std::size_t, bench::Measurement>> runs_;
};

/// Exact double comparison — the determinism contract promises bit-identical
/// results, so any tolerance would hide a scheduling dependence.
bool check_identical(const std::string& op, std::size_t workers,
                     const std::vector<double>& got,
                     const std::vector<double>& ref) {
  if (got == ref) return true;
  std::cerr << "BIT-IDENTITY FAIL: " << op << " diverged at " << workers
            << " workers vs the 0-worker serial run\n";
  return false;
}

std::vector<double> flatten(const Matrix& m) {
  return {m.data().begin(), m.data().end()};
}

/// The standing window shape of the scale benches over the city-scale
/// (exact-path) field: a dense warm half plus ~25% sparse observations.
cs::PartialMatrix make_city_window(std::size_t rows, std::size_t cols) {
  const std::size_t cycles = 48;
  const auto task = data::make_city_scale_task(rows, cols, cycles, 1000);
  const Matrix truth = task.ground_truth();
  cs::PartialMatrix window(task.num_cells(), cycles);
  Rng rng(3);
  for (std::size_t c = 0; c < cycles; ++c)
    for (std::size_t cell = 0; cell < task.num_cells(); ++cell)
      if (c < cycles / 2 || rng.bernoulli(0.25))
        window.set(cell, c, truth(cell, c));
  return window;
}

/// One cold ALS completion of the window: a fresh engine per call skips the
/// warm-start cache, so every call pays the full pooled half-sweep budget.
void bench_als_sweep(bench::JsonReporter& report, bool quick, bool& ok) {
  const cs::PartialMatrix window =
      quick ? make_city_window(10, 15) : make_city_window(25, 40);
  const double target = quick ? 100.0 : 300.0;
  WorkerSweep sweep(report, "multicore_als_sweep");
  std::vector<double> reference;
  for (const std::size_t workers : sweep_worker_counts()) {
    util::ThreadPool pool(workers);
    const auto run = [&] {
      cs::MatrixCompletion engine;
      engine.set_thread_pool(&pool);
      return engine.infer(window);
    };
    const std::vector<double> sig = flatten(run());
    if (reference.empty())
      reference = sig;
    else
      ok = check_identical("multicore_als_sweep", workers, sig, reference) &&
           ok;
    sweep.add(workers, bench::measure_ms([&] { (void)run(); }, target, 200));
  }
  sweep.finish();
}

/// The pooled LOO quality gate over a warm engine: the fit is cached after
/// the first infer, so the measurement isolates the leave-one-out fan-out —
/// the per-decision cost of the campaign (epsilon, p) gate.
void bench_loo_gate(bench::JsonReporter& report, bool quick, bool& ok) {
  const cs::PartialMatrix window =
      quick ? make_city_window(10, 15) : make_city_window(25, 40);
  const std::size_t col = window.cols() - 1;
  const double target = quick ? 100.0 : 300.0;
  WorkerSweep sweep(report, "multicore_loo_gate");
  std::vector<double> reference;
  for (const std::size_t workers : sweep_worker_counts()) {
    util::ThreadPool pool(workers);
    cs::MatrixCompletion engine;
    engine.set_thread_pool(&pool);
    (void)engine.infer(window);  // warm the fit cache once
    const std::vector<double> sig = engine.loo_column_predictions(window, col);
    if (reference.empty())
      reference = sig;
    else
      ok = check_identical("multicore_loo_gate", workers, sig, reference) &&
           ok;
    sweep.add(workers,
              bench::measure_ms(
                  [&] { (void)engine.loo_column_predictions(window, col); },
                  target, 2000));
  }
  sweep.finish();
}

data::FieldParams multicore_nystrom_params(bool quick) {
  data::FieldParams p = data::metro_scale_field_params();
  if (quick) {
    p.nystrom_threshold = 0;  // force the low-rank path on the shrunk grid
    p.nystrom_landmarks = 128;
  }
  return p;
}

std::vector<cs::CellCoord> multicore_nystrom_coords(bool quick) {
  return quick ? data::grid_coords(40, 40, 100.0, 100.0)
               : data::grid_coords(100, 100, 100.0, 100.0);
}

/// Cold Nyström factor build at the metro tier: every call resets the
/// shared registry and rebuilds through a fresh generator, so the pooled
/// cross-covariance block and per-row forward substitution are measured end
/// to end.
void bench_nystrom_build(bench::JsonReporter& report, bool quick, bool& ok) {
  const auto coords = multicore_nystrom_coords(quick);
  const data::FieldParams p = multicore_nystrom_params(quick);
  const double target = quick ? 150.0 : 600.0;
  WorkerSweep sweep(report, "multicore_nystrom_build");
  std::vector<double> reference;
  for (const std::size_t workers : sweep_worker_counts()) {
    util::ThreadPool pool(workers);
    const auto build = [&] {
      data::SyntheticFieldGenerator::reset_shared_factor_cache();
      data::SyntheticFieldGenerator gen(coords);
      gen.set_thread_pool(&pool);
      return gen.nystrom_factor(p);
    };
    const std::vector<double> sig = flatten(build());
    if (reference.empty())
      reference = sig;
    else
      ok = check_identical("multicore_nystrom_build", workers, sig,
                           reference) &&
           ok;
    sweep.add(workers, bench::measure_ms([&] { (void)build(); }, target, 20));
  }
  sweep.finish();
  data::SyntheticFieldGenerator::reset_shared_factor_cache();
}

/// Warm per-draw sampling at the metro tier: the factor is cached, every
/// call replays the serial caller-rng draw streams from an equal seed around
/// the pooled per-cell dot pass, so the result is worker-count-invariant.
void bench_nystrom_draw(bench::JsonReporter& report, bool quick, bool& ok) {
  const auto coords = multicore_nystrom_coords(quick);
  const data::FieldParams p = multicore_nystrom_params(quick);
  const std::size_t cycles = 8;
  const double target = quick ? 100.0 : 300.0;
  WorkerSweep sweep(report, "multicore_nystrom_draw");
  std::vector<double> reference;
  for (const std::size_t workers : sweep_worker_counts()) {
    util::ThreadPool pool(workers);
    data::SyntheticFieldGenerator gen(coords);
    gen.set_thread_pool(&pool);
    const auto draw = [&] {
      Rng rng(42);
      return gen.generate(p, cycles, rng);
    };
    const std::vector<double> sig = flatten(draw());
    if (reference.empty())
      reference = sig;
    else
      ok = check_identical("multicore_nystrom_draw", workers, sig,
                           reference) &&
           ok;
    sweep.add(workers, bench::measure_ms([&] { (void)draw(); }, target, 100));
  }
  sweep.finish();
  data::SyntheticFieldGenerator::reset_shared_factor_cache();
}

/// Paper-scale DRQN trainer (57 cells, k = 2, 64 LSTM units, batch 32) over
/// a 512-transition pool — the bench_micro_components recipe.
rl::DqnTrainer make_trainer(util::ThreadPool* pool) {
  Rng net_rng(2);
  rl::DqnOptions options;
  options.batch_size = 32;
  options.min_replay = 32;
  rl::DqnTrainer trainer(
      std::make_unique<rl::DrqnQNetwork>(57, 2, 64, 0, net_rng), options, 7);
  trainer.set_thread_pool(pool);
  Rng fill(3);
  for (int i = 0; i < 512; ++i) {
    rl::Experience e;
    e.state.assign(114, 0.0);
    e.state[fill.uniform_index(114)] = 1.0;
    e.action = fill.uniform_index(57);
    e.reward = fill.uniform(-1.0, 56.0);
    e.next_state.assign(114, 0.0);
    e.next_mask.assign(57, 1);
    trainer.observe(std::move(e));
  }
  return trainer;
}

/// Batched DRQN train step: identity over a fixed 5-minibatch sequence
/// (final online parameters compared bit-exactly), throughput over the
/// trainer's own deterministic sampling.
void bench_train_step(bench::JsonReporter& report, bool quick, bool& ok) {
  const double target = quick ? 150.0 : 400.0;
  WorkerSweep sweep(report, "multicore_train_step");
  std::vector<double> reference;
  for (const std::size_t workers : sweep_worker_counts()) {
    util::ThreadPool pool(workers);
    {
      rl::DqnTrainer probe = make_trainer(&pool);
      Rng draw(11);
      for (int step = 0; step < 5; ++step) {
        std::vector<std::size_t> indices;
        for (int i = 0; i < 32; ++i) indices.push_back(draw.uniform_index(512));
        (void)probe.train_step_on_indices(indices);
      }
      std::vector<double> sig;
      for (const nn::Parameter* param : probe.online().parameters()) {
        const auto data = param->value.data();
        sig.insert(sig.end(), data.begin(), data.end());
      }
      if (reference.empty())
        reference = sig;
      else
        ok = check_identical("multicore_train_step", workers, sig,
                             reference) &&
             ok;
    }
    rl::DqnTrainer trainer = make_trainer(&pool);
    sweep.add(workers, bench::measure_ms([&] { (void)trainer.train_step(); },
                                         target, 5000));
  }
  sweep.finish();
}

/// A wave-stepped fleet of RANDOM campaigns on the 57-cell Sensor-Scope-like
/// task: the scheduler fans campaign steps over the pool per wave. Identity
/// compares the full per-campaign result set plus every action log;
/// throughput is reported per wave over a one-shot fixed burst (campaign
/// state is cumulative, so the run is not repeatable in-place).
void bench_campaign_wave(bench::JsonReporter& report, bool quick, bool& ok) {
  const std::size_t campaigns = quick ? 6 : 24;
  const std::size_t warm = 4;
  const std::size_t cycles = quick ? 8 : 16;

  const auto dataset = data::make_sensorscope_like(2018);
  const auto full = std::make_shared<const mcs::SensingTask>(
      dataset.temperature.slice_cycles(0, warm + cycles));
  const auto test_task = std::make_shared<const mcs::SensingTask>(
      full->slice_cycles(warm, warm + cycles));
  core::CampaignConfig campaign;
  campaign.epsilon = 1.0;
  campaign.p = 0.9;
  campaign.env.inference_window = 4;
  campaign.env.min_observations = 12;
  campaign.env.max_selections_per_cycle = 12;
  campaign.env.warm_start = full->slice_cycles(0, warm).ground_truth();

  WorkerSweep sweep(report, "multicore_campaign_wave");
  std::vector<double> reference;
  for (const std::size_t workers : sweep_worker_counts()) {
    util::ThreadPool pool(workers);
    core::CampaignScheduler::Options opts;
    opts.pool = &pool;
    core::CampaignScheduler scheduler(opts);
    for (std::size_t i = 0; i < campaigns; ++i)
      scheduler.add_campaign(
          "wave-" + std::to_string(i), campaign, test_task,
          [] { return std::make_shared<cs::MatrixCompletion>(); },
          std::make_shared<baselines::RandomSelector>(900 + i));
    Stopwatch sw;
    const std::size_t waves = scheduler.run();
    const double per_wave_ms =
        sw.elapsed_ms() /
        static_cast<double>(std::max<std::size_t>(1, waves));
    std::vector<double> sig;
    for (const auto& result : scheduler.results()) {
      sig.push_back(static_cast<double>(result.cycles));
      sig.push_back(static_cast<double>(result.total_selected));
      sig.push_back(result.mean_cycle_error);
      sig.push_back(result.total_cost);
      sig.push_back(result.satisfaction_ratio);
    }
    for (std::size_t slot = 0; slot < campaigns; ++slot)
      for (const auto action : scheduler.action_log(slot))
        sig.push_back(static_cast<double>(action));
    if (reference.empty())
      reference = sig;
    else
      ok = check_identical("multicore_campaign_wave", workers, sig,
                           reference) &&
           ok;
    bench::Measurement m;
    m.wall_ms = per_wave_ms;
    m.iterations = static_cast<int>(waves);
    sweep.add(workers, m);
  }
  sweep.finish();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::string backend = bench::select_backend(argc, argv);
  bool no_gate = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--no-perf-gate") no_gate = true;
#ifndef NDEBUG
  no_gate = true;  // unoptimised builds measure untuned code
#endif
  if (backend != "native") {
    no_gate = true;
    std::cout << "backend " << backend << ": efficiency gates disabled\n";
  }
  const unsigned cores = std::thread::hardware_concurrency();
  const std::string json = bench::json_path(argc, argv, "BENCH_multicore.json");
  bench::JsonReporter report("multicore", quick);
  report.set_backend(backend);
  report.set_hardware_concurrency(cores);
  Stopwatch total;

  const auto workers = sweep_worker_counts();
  std::cout << "multicore scaling bench (" << (quick ? "quick" : "full")
            << " mode), hardware_concurrency " << cores
            << ", sweeping workers {";
  for (std::size_t i = 0; i < workers.size(); ++i)
    std::cout << workers[i] << (i + 1 < workers.size() ? ", " : "}\n\n");

  // Every op self-checks bit-identity across the full worker sweep; any
  // divergence fails the run regardless of gate flags.
  bool identical = true;
  bench_als_sweep(report, quick, identical);
  bench_loo_gate(report, quick, identical);
  bench_nystrom_build(report, quick, identical);
  bench_nystrom_draw(report, quick, identical);
  bench_train_step(report, quick, identical);
  bench_campaign_wave(report, quick, identical);

  std::cout << "\ntotal bench time: " << format_double(total.elapsed_seconds(), 1)
            << " s\n";
  const int exit_code = bench::finish_report(report, json, total);
  if (!identical) {
    std::cerr << "BIT-IDENTITY FAIL: at least one op diverged across worker "
                 "counts (see above)\n";
    return 1;
  }

  // Scaling-efficiency floor, armed only on machines with real lanes: at
  // hardware_concurrency >= 4 the widest sweep point runs >= 3 workers on
  // distinct cores, and the gated trio must clear 1.5x over its own serial
  // run (>= 37% parallel efficiency at 4 lanes — a deliberately loose floor
  // for contended CI runners). Below 4 cores the sweep still ran and the
  // bit-identity checks still gate; only the efficiency floor is reported
  // ungated, mirroring compare_bench.py's --min-baseline behaviour on the
  // committed narrow-box baseline.
  const double als = report.speedup("multicore_als_sweep");
  const double loo = report.speedup("multicore_loo_gate");
  const double build = report.speedup("multicore_nystrom_build");
  if (!no_gate && !quick && cores >= 4 &&
      (als < 1.5 || loo < 1.5 || build < 1.5)) {
    std::cerr << "SCALING REGRESSION: pooled speedup at the widest lane count "
                 "— ALS sweep "
              << format_double(als, 2) << "x, LOO gate "
              << format_double(loo, 2) << "x, Nystrom build "
              << format_double(build, 2)
              << "x (each must be >= 1.5x when hardware_concurrency >= 4)\n";
    return 1;
  }
  if (cores < 4)
    std::cout << "efficiency gates DISARMED: hardware_concurrency " << cores
              << " < 4 (bit-identity checks still enforced)\n";
  return exit_code;
}
