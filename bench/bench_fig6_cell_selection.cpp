// Reproduces Fig. 6 of the paper: average number of selected cells per
// sensing cycle for DR-Cell vs QBC vs RANDOM on
//   * Sensor-Scope temperature, (0.3 °C, p)-quality, p in {0.9, 0.95}
//   * U-Air PM2.5, (9/36 classification error, p)-quality, p in {0.9, 0.95}
//
// Expected shape (the paper's result): DR-Cell selects the fewest cells at
// equal quality, QBC sits between DR-Cell and RANDOM, and every method
// needs more cells at p = 0.95 than at p = 0.9.
#include "bench_common.h"

using namespace drcell;

namespace {

void run_dataset(const std::string& label, const mcs::SensingTask& full,
                 double epsilon, std::size_t warm, std::size_t train,
                 std::size_t window, std::size_t episodes, bool quick,
                 bench::JsonReporter& report) {
  bench::ExperimentSlices slices = bench::make_slices(full, warm, train);
  if (quick) {
    // Shrink the testing horizon for smoke runs.
    slices.test_task = std::make_shared<const mcs::SensingTask>(
        slices.test_task->slice_cycles(
            0, std::min<std::size_t>(48, slices.test_task->num_cycles())));
  }
  const std::size_t cells = full.num_cells();
  core::DrCellConfig config =
      bench::paper_config(cells, window, /*decay_steps=*/episodes * 500);

  std::cout << "[" << label << "] training DR-Cell (" << episodes
            << " episodes over " << train << " cycles)...\n";
  double train_seconds = 0.0;
  auto agent = bench::train_drcell(slices, epsilon, config, episodes,
                                   &train_seconds);
  std::cout << "[" << label << "] trained in "
            << format_double(train_seconds, 1) << " s\n";
  report.add(label + "_drcell_training_episode",
             train_seconds * 1e3 / static_cast<double>(episodes),
             static_cast<double>(episodes),
             static_cast<double>(episodes) / train_seconds);

  TablePrinter table({"quality", "method", "avg cells/cycle",
                      "fraction of cells", "satisfaction", "error"});
  for (double p : {0.9, 0.95}) {
    core::DrCellPolicy drcell(agent);
    auto qbc = baselines::QbcSelector::make_default(*slices.test_task, 101);
    baselines::RandomSelector random(102);
    baselines::CellSelector* selectors[] = {&drcell, &qbc, &random};
    for (auto* selector : selectors) {
      Stopwatch eval_watch;
      const auto r =
          bench::evaluate(slices, *selector, epsilon, p, config);
      const double eval_ms = eval_watch.elapsed_ms();
      const double cycles =
          static_cast<double>(slices.test_task->num_cycles());
      report.add(label + "_eval_" + r.selector + "_p" + format_double(p, 2),
                 eval_ms / cycles, cycles, cycles * 1e3 / eval_ms);
      table.add_row(
          {"(" + format_double(epsilon, 2) + ", " + format_double(p, 2) + ")",
           r.selector, format_double(r.avg_cells_per_cycle, 2),
           bench::pct(r.avg_cells_per_cycle / static_cast<double>(cells)),
           format_double(r.satisfaction_ratio, 2),
           format_double(r.mean_cycle_error, 3)});
    }
  }
  std::cout << "\nFig. 6 (" << label << ", " << cells << " cells, "
            << slices.test_task->num_cycles() << " test cycles):\n";
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::string json = bench::json_path(argc, argv, "BENCH_fig6.json");
  bench::JsonReporter report("fig6_cell_selection", quick);
  Stopwatch total;

  {
    const auto dataset = data::make_sensorscope_like(2018);
    run_dataset("temperature", dataset.temperature, /*epsilon=*/0.3,
                /*warm=*/48, /*train=*/96, /*window=*/48,
                /*episodes=*/quick ? 3 : 12, quick, report);
  }
  {
    const auto dataset = data::make_uair_like(2013);
    run_dataset("pm2.5", dataset.pm25, /*epsilon=*/9.0 / 36.0,
                /*warm=*/24, /*train=*/48, /*window=*/36,
                /*episodes=*/quick ? 3 : 12, quick, report);
  }

  std::cout << "total bench time: " << format_double(total.elapsed_seconds(), 1)
            << " s\n";
  return bench::finish_report(report, json, total);
}
