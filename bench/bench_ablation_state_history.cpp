// Ablation A2 (DESIGN.md): how much history should the state carry?
// Sec. 4.1 keeps the recent k cycles of the selection matrix; this sweeps
// k and reports the deployed budget on the temperature task.
#include "bench_common.h"

using namespace drcell;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::string json = bench::json_path(argc, argv, "BENCH_ablation_state_history.json");
  bench::JsonReporter report("a2_state_history", quick);
  Stopwatch total_watch;
  const std::size_t episodes = quick ? 2 : 8;

  const auto dataset = data::make_sensorscope_like(2018);
  auto slices = bench::make_slices(dataset.temperature, 48, 96);
  slices.test_task = std::make_shared<const mcs::SensingTask>(
      slices.test_task->slice_cycles(0, quick ? 48 : 96));
  const double epsilon = 0.3;
  const std::size_t cells = dataset.temperature.num_cells();

  TablePrinter table({"history k", "avg cells/cycle", "satisfaction"});
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    core::DrCellConfig config = bench::paper_config(cells, 48, episodes * 500);
    config.history_cycles = k;
    std::cout << "training DRQN with k = " << k << "...\n";
    auto agent = bench::train_drcell(slices, epsilon, config, episodes);
    core::DrCellPolicy policy(agent);
    const auto r = bench::evaluate(slices, policy, epsilon, 0.9, config);
    table.add_row(std::to_string(k),
                  {r.avg_cells_per_cycle, r.satisfaction_ratio});
  }

  std::cout << "\nA2 — state history length ablation (temperature, "
               "(0.3 degC, 0.9)-quality):\n";
  table.print(std::cout);
  return bench::finish_report(report, json, total_watch);
}
