// Ablation A5 (DESIGN.md): the oracle gap. The paper's footnote 1 notes
// that the optimal strategy would need the ground truth in advance. The
// greedy ground-truth oracle gives an (approximate) lower bound on the
// per-cycle budget; the gap above it is the remaining headroom for any
// practical policy. The oracle costs one inference per candidate cell per
// step, so this bench runs on a short horizon.
#include "bench_common.h"
#include "baselines/oracle_selector.h"

using namespace drcell;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::string json = bench::json_path(argc, argv, "BENCH_ablation_oracle.json");
  bench::JsonReporter report("oracle", quick);
  Stopwatch total_watch;
  const std::size_t test_cycles = quick ? 12 : 24;
  const std::size_t episodes = quick ? 2 : 8;

  const auto dataset = data::make_sensorscope_like(2018);
  auto slices = bench::make_slices(dataset.temperature, 48, 96);
  slices.test_task = std::make_shared<const mcs::SensingTask>(
      slices.test_task->slice_cycles(0, test_cycles));
  const double epsilon = 0.3;
  const std::size_t cells = dataset.temperature.num_cells();
  core::DrCellConfig config = bench::paper_config(cells, 48, episodes * 500);

  std::cout << "training DR-Cell...\n";
  auto agent = bench::train_drcell(slices, epsilon, config, episodes);
  core::DrCellPolicy drcell(agent);
  baselines::GreedyOracleSelector oracle(bench::paper_engine());
  baselines::RandomSelector random(9);

  TablePrinter table({"policy", "avg cells/cycle", "satisfaction"});
  baselines::CellSelector* selectors[] = {&oracle, &drcell, &random};
  for (auto* selector : selectors) {
    std::cout << "running " << selector->name() << "...\n";
    const auto r = bench::evaluate(slices, *selector, epsilon, 0.9, config);
    table.add_row(r.selector, {r.avg_cells_per_cycle, r.satisfaction_ratio});
  }

  std::cout << "\nA5 — oracle gap (temperature, (0.3 degC, 0.9)-quality, "
            << test_cycles << " cycles):\n";
  table.print(std::cout);
  std::cout << "\n(ORACLE greedily minimises the *true* cycle error using "
               "ground truth — impractical, per the paper's footnote 1)\n";
  return bench::finish_report(report, json, total_watch);
}
