// Multi-campaign serving bench — the scale lane of the campaign scheduler
// (core/campaign_scheduler.h): {10, 100, 1000} concurrent city-scale
// campaigns stepped in waves over the shared pool, with the multicore lane
// re-running the 100-campaign tier at workers in {1, 4, ncores}.
//
// Hard gates (exit non-zero, independent of --no-perf-gate):
//   * batched stepping is bit-identical per campaign to solo stepping with
//     the same seeds (action logs AND episode stats, vs both the unbatched
//     scheduler and the single-campaign runner);
//   * worker count never changes any campaign's trace (the pooled STEP
//     phase is index-exclusive by contract);
//   * N same-spatial-params campaigns pay ONE factorisation: the shared
//     factor registry records >= N-1 hits;
//   * --resume-smoke: a fleet checkpointed mid-flight and resumed in a
//     fresh scheduler finishes bit-identical to an uninterrupted run (the
//     CI resume smoke job runs exactly this mode).
//
// Perf gate (skipped under --no-perf-gate): building same-geometry tasks
// against a warm shared registry must be >= 3x faster than paying the
// spatial factorisation per task (the op CI tracks as
// multi_campaign_field_gen_shared_cache).
//
//   ./build/bench_multi_campaign [--quick] [--json [path]]
//                                [--no-perf-gate] [--resume-smoke]
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/campaign_scheduler.h"
#include "core/checkpoint.h"
#include "data/synthetic_field.h"

namespace {

using namespace drcell;
using bench::JsonReporter;
using bench::measure_ms;

cs::InferenceEnginePtr make_engine() {
  return std::make_shared<cs::MatrixCompletion>();
}

// ---------------------------------------------------------------------------
// Fleet construction

/// City-scale campaign sized so one wave's work is dominated by inference:
/// min_observations == max_selections_per_cycle makes the gate consult (and
/// its 1000-cell completion) fire exactly once per cycle.
struct CityFleetSpec {
  std::size_t campaigns = 10;
  std::size_t cycles = 4;
  std::uint64_t seed_base = 5000;
};

core::CampaignConfig city_campaign_config(const mcs::SensingTask& task,
                                          std::size_t warm_cycles) {
  core::CampaignConfig campaign;
  campaign.epsilon = 1.0;
  campaign.p = 0.9;
  campaign.env.inference_window = 4;
  campaign.env.min_observations = 12;
  campaign.env.max_selections_per_cycle = 12;
  campaign.env.warm_start = task.slice_cycles(0, warm_cycles).ground_truth();
  return campaign;
}

/// Same spatial params, different seeds: every task draws a different field
/// over the same 25 x 40 grid, so the fleet exercises the process-wide
/// shared factor registry (one Cholesky for the whole fleet).
void populate_city_fleet(core::CampaignScheduler& scheduler,
                         const CityFleetSpec& spec) {
  const std::size_t warm = 4;
  for (std::size_t i = 0; i < spec.campaigns; ++i) {
    const auto task = std::make_shared<const mcs::SensingTask>(
        data::make_city_scale_task(25, 40, warm + spec.cycles,
                                   spec.seed_base + i));
    core::CampaignConfig campaign = city_campaign_config(*task, warm);
    auto test_task = std::make_shared<const mcs::SensingTask>(
        task->slice_cycles(warm, warm + spec.cycles));
    scheduler.add_campaign("city-" + std::to_string(i), campaign, test_task,
                           make_engine,
                           std::make_shared<baselines::RandomSelector>(
                               900 + spec.seed_base + i));
  }
}

/// Small mixed fleet for the bit-identity gates: `drqn` frozen DR-Cell
/// campaigns sharing ONE (deterministically initialised) agent — the
/// batched group — plus `random` RANDOM campaigns, all on the 36-cell
/// U-Air-like task.
struct MixedFleet {
  std::shared_ptr<core::DrCellAgent> agent;
  std::shared_ptr<const mcs::SensingTask> test_task;
  core::CampaignConfig campaign;
  std::size_t drqn = 3;
  std::size_t random = 3;

  MixedFleet(std::size_t drqn_n, std::size_t random_n)
      : drqn(drqn_n), random(random_n) {
    const auto dataset = data::make_uair_like(2013);
    test_task = std::make_shared<const mcs::SensingTask>(
        dataset.pm25.slice_cycles(24, 48));
    core::DrCellConfig config;
    config.lstm_hidden = 24;
    config.env.min_observations = 3;
    config.env.inference_window = 8;
    // Deterministic random-init weights: bit-identity does not need a
    // trained policy, only a fixed one.
    agent = std::make_shared<core::DrCellAgent>(test_task->num_cells(),
                                               config);
    campaign.epsilon = 9.0 / 36.0;
    campaign.p = 0.9;
    campaign.env = config.env;
    campaign.env.history_cycles = config.history_cycles;
  }

  void populate(core::CampaignScheduler& scheduler) const {
    for (std::size_t i = 0; i < drqn; ++i)
      scheduler.add_campaign("drqn-" + std::to_string(i), campaign, test_task,
                             make_engine,
                             std::make_shared<core::DrCellPolicy>(*agent));
    for (std::size_t i = 0; i < random; ++i)
      scheduler.add_campaign(
          "rand-" + std::to_string(i), campaign, test_task, make_engine,
          std::make_shared<baselines::RandomSelector>(200 + i));
  }
};

// ---------------------------------------------------------------------------
// Bit-compare helpers (seconds excluded by construction: scheduler results
// carry seconds = 0)

bool same_stats(const mcs::EpisodeStats& a, const mcs::EpisodeStats& b) {
  return a.cycles == b.cycles && a.total_selections == b.total_selections &&
         a.total_reward == b.total_reward && a.total_cost == b.total_cost &&
         a.cycle_errors == b.cycle_errors &&
         a.cycle_selected == b.cycle_selected;
}

bool same_result(const core::CampaignResult& a, const core::CampaignResult& b,
                 bool compare_id = true) {
  return (!compare_id || a.id == b.id) && a.selector == b.selector &&
         a.cycles == b.cycles && a.total_selected == b.total_selected &&
         a.avg_cells_per_cycle == b.avg_cells_per_cycle &&
         a.satisfaction_ratio == b.satisfaction_ratio &&
         a.mean_cycle_error == b.mean_cycle_error &&
         a.total_cost == b.total_cost && same_stats(a.stats, b.stats);
}

bool same_fleets(const core::CampaignScheduler& a,
                 const core::CampaignScheduler& b, const char* what) {
  const auto ra = a.results();
  const auto rb = b.results();
  if (ra.size() != rb.size()) {
    std::cerr << "GATE FAIL (" << what << "): fleet sizes differ\n";
    return false;
  }
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (!same_result(ra[i], rb[i]) || a.action_log(i) != b.action_log(i)) {
      std::cerr << "GATE FAIL (" << what << "): campaign '" << ra[i].id
                << "' diverged\n";
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Gate (a): batched wave == unbatched wave == solo runner

bool gate_batched_bit_identity() {
  const MixedFleet fleet(3, 3);

  core::CampaignScheduler::Options batched_opts;
  batched_opts.cross_campaign_batching = true;
  core::CampaignScheduler batched(batched_opts);
  fleet.populate(batched);
  batched.run();

  core::CampaignScheduler::Options unbatched_opts;
  unbatched_opts.cross_campaign_batching = false;
  core::CampaignScheduler unbatched(unbatched_opts);
  // RANDOM selectors are stateful: rebuild the fleet so their streams start
  // fresh (frozen DR-Cell shares the agent, which solo stepping reads only).
  fleet.populate(unbatched);
  unbatched.run();

  if (!same_fleets(batched, unbatched, "batched vs unbatched")) return false;

  // Solo reference: the single-campaign runner, same seeds.
  const auto batched_results = batched.results();
  for (std::size_t i = 0; i < fleet.drqn; ++i) {
    core::DrCellPolicy solo_policy(*fleet.agent);
    const auto solo = core::run_campaign(fleet.test_task, make_engine(),
                                         solo_policy, fleet.campaign);
    if (!same_result(solo, batched_results[i], /*compare_id=*/false)) {
      std::cerr << "GATE FAIL (scheduler vs run_campaign): drqn-" << i
                << " diverged\n";
      return false;
    }
  }
  {
    baselines::RandomSelector solo_random(200);  // seed of rand-0
    const auto solo = core::run_campaign(fleet.test_task, make_engine(),
                                         solo_random, fleet.campaign);
    if (!same_result(solo, batched_results[fleet.drqn],
                     /*compare_id=*/false)) {
      std::cerr << "GATE FAIL (scheduler vs run_campaign): rand-0 diverged\n";
      return false;
    }
  }
  std::cout << "gate: batched stepping bit-identical to solo stepping\n";
  return true;
}

// ---------------------------------------------------------------------------
// Gate: shared factor registry

bool gate_shared_cache(std::size_t n_tasks) {
  data::SyntheticFieldGenerator::reset_shared_factor_cache();
  for (std::size_t i = 0; i < n_tasks; ++i)
    data::make_city_scale_task(25, 40, /*cycles=*/2, /*seed=*/7000 + i);
  const std::size_t hits =
      data::SyntheticFieldGenerator::shared_factor_cache_hits();
  if (hits < n_tasks - 1) {
    std::cerr << "GATE FAIL (shared factor cache): " << n_tasks
              << " same-params tasks produced only " << hits
              << " registry hits (need >= " << (n_tasks - 1) << ")\n";
    return false;
  }
  std::cout << "gate: shared factor cache served " << hits << "/"
            << (n_tasks - 1) << "+ same-params factorisations\n";
  return true;
}

// ---------------------------------------------------------------------------
// Resume smoke: burst -> checkpoint -> fresh scheduler -> resume -> compare

int resume_smoke() {
  const MixedFleet fleet(3, 3);

  core::CampaignScheduler uninterrupted;
  fleet.populate(uninterrupted);
  uninterrupted.run();

  core::CampaignScheduler burst;
  fleet.populate(burst);
  burst.run(/*max_waves=*/25);
  std::ostringstream checkpoint(std::ios::binary);
  core::save_checkpoint(burst, checkpoint);

  // The burst scheduler is destroyed here; the resumed one is rebuilt from
  // the registry alone plus the checkpoint bytes.
  core::CampaignScheduler resumed;
  fleet.populate(resumed);
  std::istringstream in(checkpoint.str(), std::ios::binary);
  core::load_checkpoint(resumed, in);
  resumed.run();

  if (!same_fleets(uninterrupted, resumed, "resume smoke")) return 1;
  std::cout << "gate: checkpoint/resume bit-identical to uninterrupted run ("
            << checkpoint.str().size() << "-byte checkpoint)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  // The correctness gates below are within-process bit-identity checks, so
  // they hold under any single exact-contract backend; the perf gate is
  // shape-level (shared registry vs rebuilt) and backend-agnostic.
  const std::string backend = bench::select_backend(argc, argv);
  const std::string json =
      bench::json_path(argc, argv, "BENCH_multi_campaign.json");
  bool perf_gate = true;
  bool smoke_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--no-perf-gate") perf_gate = false;
    if (std::string(argv[i]) == "--resume-smoke") smoke_only = true;
  }
  if (smoke_only) return resume_smoke();

  Stopwatch total;
  JsonReporter report("multi_campaign", quick);
  report.set_backend(backend);
  std::cout << "multi-campaign serving bench (" << (quick ? "quick" : "full")
            << " mode)\n\n";

  // --- Correctness gates (always hard) ---------------------------------
  if (!gate_batched_bit_identity()) return 1;
  if (!gate_shared_cache(quick ? 4 : 8)) return 1;
  if (resume_smoke() != 0) return 1;

  // --- Shared-registry perf pair ---------------------------------------
  // Optimised: N same-geometry generators against a warm registry pay one
  // lookup each. Reference: the registry is reset before every build, so
  // each generator pays the full 1000-cell spatial Cholesky — exactly what
  // every campaign of a fleet paid before the process-wide cache.
  {
    const auto coords = data::grid_coords(25, 40, 100.0, 100.0);
    data::FieldParams params;
    params.spatial_length = 600.0;
    params.nugget = 0.02;
    params.num_modes = 6;
    const std::size_t gens_per_call = 4;
    const auto build_fleet_fields = [&] {
      for (std::size_t i = 0; i < gens_per_call; ++i) {
        data::SyntheticFieldGenerator gen(coords);
        Rng rng(400 + i);
        gen.generate(params, 2, rng);
      }
    };
    data::SyntheticFieldGenerator::reset_shared_factor_cache();
    const auto warm =
        measure_ms(build_fleet_fields, quick ? 200.0 : 600.0, 50);
    const auto cold = measure_ms(
        [&] {
          data::SyntheticFieldGenerator::reset_shared_factor_cache();
          build_fleet_fields();
        },
        quick ? 300.0 : 1000.0, 50);
    report.add_with_reference("multi_campaign_field_gen_shared_cache",
                              warm.wall_ms, warm.iterations,
                              1e3 / warm.wall_ms, cold.wall_ms,
                              cold.iterations);
    std::cout << "shared-registry field gen: " << format_double(warm.wall_ms, 1)
              << " ms warm vs " << format_double(cold.wall_ms, 1)
              << " ms cold ("
              << format_double(
                     report.speedup("multi_campaign_field_gen_shared_cache"), 2)
              << "x)\n";
    if (perf_gate &&
        report.speedup("multi_campaign_field_gen_shared_cache") < 3.0) {
      std::cerr << "PERF GATE FAIL: shared factor registry speedup < 3x\n";
      return 1;
    }
  }

  // --- Batched-wave perf pair ------------------------------------------
  // A pure serving fleet (32 frozen DR-Cell campaigns, one shared agent) on
  // the 36-cell task: batched waves score all campaigns with one
  // forward_batch; the unbatched reference runs 32 B = 1 forwards. Context
  // number (no hard gate): the win is batching overhead amortisation, and
  // at fleet sizes this small it is expected to be modest.
  {
    const std::size_t fleet_size = quick ? 8 : 32;
    const MixedFleet fleet(fleet_size, 0);
    const auto run_fleet = [&](bool batching) {
      core::CampaignScheduler::Options opts;
      opts.cross_campaign_batching = batching;
      core::CampaignScheduler scheduler(opts);
      fleet.populate(scheduler);
      scheduler.run(/*max_waves=*/quick ? 10 : 20);
    };
    const auto batched = measure_ms([&] { run_fleet(true); },
                                    quick ? 200.0 : 500.0, 20);
    const auto unbatched = measure_ms([&] { run_fleet(false); },
                                      quick ? 200.0 : 500.0, 20);
    report.add_with_reference("multi_campaign_batched_wave", batched.wall_ms,
                              batched.iterations, 1e3 / batched.wall_ms,
                              unbatched.wall_ms, unbatched.iterations);
    std::cout << "batched wave (" << fleet_size
              << " campaigns, shared agent): "
              << format_double(batched.wall_ms, 1) << " ms vs "
              << format_double(unbatched.wall_ms, 1) << " ms unbatched ("
              << format_double(report.speedup("multi_campaign_batched_wave"),
                               2)
              << "x)\n";
  }

  // --- Concurrent-campaign tiers ---------------------------------------
  // Aggregate serving throughput: N city-scale campaigns to completion,
  // reported as sensing cycles finished per second across the fleet.
  const std::vector<std::size_t> tiers =
      quick ? std::vector<std::size_t>{5, 20}
            : std::vector<std::size_t>{10, 100, 1000};
  for (const std::size_t n : tiers) {
    CityFleetSpec spec;
    spec.campaigns = n;
    spec.cycles = quick ? 2 : 4;
    core::CampaignScheduler scheduler;
    populate_city_fleet(scheduler, spec);
    Stopwatch sw;
    scheduler.run();
    const double ms = sw.elapsed_ms();
    std::size_t fleet_cycles = 0;
    for (const auto& r : scheduler.results()) fleet_cycles += r.cycles;
    const double cycles_per_sec = 1e3 * static_cast<double>(fleet_cycles) / ms;
    const std::string op = "multi_campaign_cycles_" + std::to_string(n);
    report.add(op, ms, 1, cycles_per_sec);
    std::cout << op << ": " << n << " campaigns, " << fleet_cycles
              << " cycles in " << format_double(ms, 0) << " ms ("
              << format_double(cycles_per_sec, 1) << " cycles/s)\n";
  }

  // --- Multicore lane: 100-campaign tier at workers in {1, 4, ncores} ---
  // Hard-gates worker-count invariance: every worker count must produce the
  // identical fleet trace (the pooled STEP phase is index-exclusive).
  {
    const std::size_t tier = quick ? 12 : 100;
    // "Workers" here counts executing lanes (pool threads + the
    // participating caller), so lane 1 is the serial floor and lane ncores
    // saturates the machine.
    const std::size_t ncores = util::ThreadPool::default_worker_count() + 1;
    std::vector<std::size_t> worker_counts{1, 4};
    if (ncores != 1 && ncores != 4) worker_counts.push_back(ncores);
    std::unique_ptr<core::CampaignScheduler> reference;
    for (const std::size_t workers : worker_counts) {
      util::ThreadPool pool(workers - 1);
      core::CampaignScheduler::Options opts;
      opts.pool = &pool;
      auto scheduler = std::make_unique<core::CampaignScheduler>(opts);
      CityFleetSpec spec;
      spec.campaigns = tier;
      spec.cycles = quick ? 2 : 4;
      populate_city_fleet(*scheduler, spec);
      Stopwatch sw;
      scheduler->run();
      const double ms = sw.elapsed_ms();
      std::size_t fleet_cycles = 0;
      for (const auto& r : scheduler->results()) fleet_cycles += r.cycles;
      const std::string op = "multi_campaign_" + std::to_string(tier) +
                             "_workers" + std::to_string(workers);
      report.add(op, ms, 1,
                 1e3 * static_cast<double>(fleet_cycles) / ms);
      std::cout << op << ": " << format_double(ms, 0) << " ms\n";
      if (reference == nullptr) {
        reference = std::move(scheduler);
      } else if (!same_fleets(*reference, *scheduler,
                              "worker-count invariance")) {
        return 1;
      }
    }
    std::cout << "gate: fleet trace identical for all worker counts\n";
  }

  std::cout << "\nall gates passed\n";
  return bench::finish_report(report, json, total);
}
