// Multi-campaign serving bench — the scale lane of the campaign scheduler
// (core/campaign_scheduler.h): {10, 100, 1000} concurrent city-scale
// campaigns stepped in waves over the shared pool, with the multicore lane
// re-running the 100-campaign tier at workers in {1, 4, ncores}.
//
// Hard gates (exit non-zero, independent of --no-perf-gate):
//   * batched stepping is bit-identical per campaign to solo stepping with
//     the same seeds (action logs AND episode stats, vs both the unbatched
//     scheduler and the single-campaign runner);
//   * worker count never changes any campaign's trace (the pooled STEP
//     phase is index-exclusive by contract);
//   * N same-spatial-params campaigns pay ONE factorisation: the shared
//     factor registry records >= N-1 hits;
//   * --resume-smoke: a fleet checkpointed mid-flight and resumed in a
//     fresh scheduler finishes bit-identical to an uninterrupted run (the
//     CI resume smoke job runs exactly this mode);
//   * --fault-drill: the fault-tolerance drills — injected faults into K of
//     N campaigns quarantine exactly those K while the other N-K finish
//     bit-identical to a no-fault run; a transiently faulting step is
//     retried and the WHOLE fleet stays bit-identical; a NaN-poisoned
//     shared agent is detected and the fleet restored from the checkpoint
//     ring bit-identically; truncated/bit-flipped checkpoints are rejected
//     as corruption (exit non-zero on any leak or failed recovery);
//   * --fault-spec-smoke: expects a DRCELL_FAULT_SPEC of
//     'env.step@rand-1' in the environment (the CI ASan job sets it) and
//     asserts the env-armed spec fires and quarantines exactly rand-1.
//
// Perf gate (skipped under --no-perf-gate): building same-geometry tasks
// against a warm shared registry must be >= 3x faster than paying the
// spatial factorisation per task (the op CI tracks as
// multi_campaign_field_gen_shared_cache).
//
//   ./build/bench_multi_campaign [--quick] [--json [path]]
//                                [--no-perf-gate] [--resume-smoke]
//                                [--fault-drill] [--fault-spec-smoke]
#include <algorithm>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/campaign_scheduler.h"
#include "core/checkpoint.h"
#include "data/synthetic_field.h"
#include "util/fault_injection.h"

namespace {

using namespace drcell;
using bench::JsonReporter;
using bench::measure_ms;

cs::InferenceEnginePtr make_engine() {
  return std::make_shared<cs::MatrixCompletion>();
}

// ---------------------------------------------------------------------------
// Fleet construction

/// City-scale campaign sized so one wave's work is dominated by inference:
/// min_observations == max_selections_per_cycle makes the gate consult (and
/// its 1000-cell completion) fire exactly once per cycle.
struct CityFleetSpec {
  std::size_t campaigns = 10;
  std::size_t cycles = 4;
  std::uint64_t seed_base = 5000;
};

core::CampaignConfig city_campaign_config(const mcs::SensingTask& task,
                                          std::size_t warm_cycles) {
  core::CampaignConfig campaign;
  campaign.epsilon = 1.0;
  campaign.p = 0.9;
  campaign.env.inference_window = 4;
  campaign.env.min_observations = 12;
  campaign.env.max_selections_per_cycle = 12;
  campaign.env.warm_start = task.slice_cycles(0, warm_cycles).ground_truth();
  return campaign;
}

/// Same spatial params, different seeds: every task draws a different field
/// over the same 25 x 40 grid, so the fleet exercises the process-wide
/// shared factor registry (one Cholesky for the whole fleet).
void populate_city_fleet(core::CampaignScheduler& scheduler,
                         const CityFleetSpec& spec) {
  const std::size_t warm = 4;
  for (std::size_t i = 0; i < spec.campaigns; ++i) {
    const auto task = std::make_shared<const mcs::SensingTask>(
        data::make_city_scale_task(25, 40, warm + spec.cycles,
                                   spec.seed_base + i));
    core::CampaignConfig campaign = city_campaign_config(*task, warm);
    auto test_task = std::make_shared<const mcs::SensingTask>(
        task->slice_cycles(warm, warm + spec.cycles));
    scheduler.add_campaign("city-" + std::to_string(i), campaign, test_task,
                           make_engine,
                           std::make_shared<baselines::RandomSelector>(
                               900 + spec.seed_base + i));
  }
}

/// Small mixed fleet for the bit-identity gates: `drqn` frozen DR-Cell
/// campaigns sharing ONE (deterministically initialised) agent — the
/// batched group — plus `random` RANDOM campaigns, all on the 36-cell
/// U-Air-like task.
struct MixedFleet {
  std::shared_ptr<core::DrCellAgent> agent;
  std::shared_ptr<const mcs::SensingTask> test_task;
  core::CampaignConfig campaign;
  std::size_t drqn = 3;
  std::size_t random = 3;

  MixedFleet(std::size_t drqn_n, std::size_t random_n)
      : drqn(drqn_n), random(random_n) {
    const auto dataset = data::make_uair_like(2013);
    test_task = std::make_shared<const mcs::SensingTask>(
        dataset.pm25.slice_cycles(24, 48));
    core::DrCellConfig config;
    config.lstm_hidden = 24;
    config.env.min_observations = 3;
    config.env.inference_window = 8;
    // Deterministic random-init weights: bit-identity does not need a
    // trained policy, only a fixed one.
    agent = std::make_shared<core::DrCellAgent>(test_task->num_cells(),
                                               config);
    campaign.epsilon = 9.0 / 36.0;
    campaign.p = 0.9;
    campaign.env = config.env;
    campaign.env.history_cycles = config.history_cycles;
  }

  void populate(core::CampaignScheduler& scheduler) const {
    for (std::size_t i = 0; i < drqn; ++i)
      scheduler.add_campaign("drqn-" + std::to_string(i), campaign, test_task,
                             make_engine,
                             std::make_shared<core::DrCellPolicy>(*agent));
    for (std::size_t i = 0; i < random; ++i)
      scheduler.add_campaign(
          "rand-" + std::to_string(i), campaign, test_task, make_engine,
          std::make_shared<baselines::RandomSelector>(200 + i));
  }
};

// ---------------------------------------------------------------------------
// Bit-compare helpers (seconds excluded by construction: scheduler results
// carry seconds = 0)

bool same_stats(const mcs::EpisodeStats& a, const mcs::EpisodeStats& b) {
  return a.cycles == b.cycles && a.total_selections == b.total_selections &&
         a.total_reward == b.total_reward && a.total_cost == b.total_cost &&
         a.cycle_errors == b.cycle_errors &&
         a.cycle_selected == b.cycle_selected;
}

bool same_result(const core::CampaignResult& a, const core::CampaignResult& b,
                 bool compare_id = true) {
  return (!compare_id || a.id == b.id) && a.selector == b.selector &&
         a.cycles == b.cycles && a.total_selected == b.total_selected &&
         a.avg_cells_per_cycle == b.avg_cells_per_cycle &&
         a.satisfaction_ratio == b.satisfaction_ratio &&
         a.mean_cycle_error == b.mean_cycle_error &&
         a.total_cost == b.total_cost && same_stats(a.stats, b.stats);
}

bool same_fleets(const core::CampaignScheduler& a,
                 const core::CampaignScheduler& b, const char* what) {
  const auto ra = a.results();
  const auto rb = b.results();
  if (ra.size() != rb.size()) {
    std::cerr << "GATE FAIL (" << what << "): fleet sizes differ\n";
    return false;
  }
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (!same_result(ra[i], rb[i]) || a.action_log(i) != b.action_log(i)) {
      std::cerr << "GATE FAIL (" << what << "): campaign '" << ra[i].id
                << "' diverged\n";
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Gate (a): batched wave == unbatched wave == solo runner

bool gate_batched_bit_identity() {
  const MixedFleet fleet(3, 3);

  core::CampaignScheduler::Options batched_opts;
  batched_opts.cross_campaign_batching = true;
  core::CampaignScheduler batched(batched_opts);
  fleet.populate(batched);
  batched.run();

  core::CampaignScheduler::Options unbatched_opts;
  unbatched_opts.cross_campaign_batching = false;
  core::CampaignScheduler unbatched(unbatched_opts);
  // RANDOM selectors are stateful: rebuild the fleet so their streams start
  // fresh (frozen DR-Cell shares the agent, which solo stepping reads only).
  fleet.populate(unbatched);
  unbatched.run();

  if (!same_fleets(batched, unbatched, "batched vs unbatched")) return false;

  // Solo reference: the single-campaign runner, same seeds.
  const auto batched_results = batched.results();
  for (std::size_t i = 0; i < fleet.drqn; ++i) {
    core::DrCellPolicy solo_policy(*fleet.agent);
    const auto solo = core::run_campaign(fleet.test_task, make_engine(),
                                         solo_policy, fleet.campaign);
    if (!same_result(solo, batched_results[i], /*compare_id=*/false)) {
      std::cerr << "GATE FAIL (scheduler vs run_campaign): drqn-" << i
                << " diverged\n";
      return false;
    }
  }
  {
    baselines::RandomSelector solo_random(200);  // seed of rand-0
    const auto solo = core::run_campaign(fleet.test_task, make_engine(),
                                         solo_random, fleet.campaign);
    if (!same_result(solo, batched_results[fleet.drqn],
                     /*compare_id=*/false)) {
      std::cerr << "GATE FAIL (scheduler vs run_campaign): rand-0 diverged\n";
      return false;
    }
  }
  std::cout << "gate: batched stepping bit-identical to solo stepping\n";
  return true;
}

// ---------------------------------------------------------------------------
// Gate: shared factor registry

bool gate_shared_cache(std::size_t n_tasks) {
  data::SyntheticFieldGenerator::reset_shared_factor_cache();
  for (std::size_t i = 0; i < n_tasks; ++i)
    data::make_city_scale_task(25, 40, /*cycles=*/2, /*seed=*/7000 + i);
  const std::size_t hits =
      data::SyntheticFieldGenerator::shared_factor_cache_hits();
  if (hits < n_tasks - 1) {
    std::cerr << "GATE FAIL (shared factor cache): " << n_tasks
              << " same-params tasks produced only " << hits
              << " registry hits (need >= " << (n_tasks - 1) << ")\n";
    return false;
  }
  std::cout << "gate: shared factor cache served " << hits << "/"
            << (n_tasks - 1) << "+ same-params factorisations\n";
  return true;
}

// ---------------------------------------------------------------------------
// Resume smoke: burst -> checkpoint -> fresh scheduler -> resume -> compare

int resume_smoke() {
  const MixedFleet fleet(3, 3);

  core::CampaignScheduler uninterrupted;
  fleet.populate(uninterrupted);
  uninterrupted.run();

  core::CampaignScheduler burst;
  fleet.populate(burst);
  burst.run(/*max_waves=*/25);
  std::ostringstream checkpoint(std::ios::binary);
  core::save_checkpoint(burst, checkpoint);

  // The burst scheduler is destroyed here; the resumed one is rebuilt from
  // the registry alone plus the checkpoint bytes.
  core::CampaignScheduler resumed;
  fleet.populate(resumed);
  std::istringstream in(checkpoint.str(), std::ios::binary);
  core::load_checkpoint(resumed, in);
  resumed.run();

  if (!same_fleets(uninterrupted, resumed, "resume smoke")) return 1;
  std::cout << "gate: checkpoint/resume bit-identical to uninterrupted run ("
            << checkpoint.str().size() << "-byte checkpoint)\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Fault drills (--fault-drill): every assert is a hard gate.

/// Healthy-fleet bit-identity vs a no-fault reference, skipping the slots
/// listed in `skip` (the deliberately faulted campaigns).
bool healthy_slots_identical(const core::CampaignScheduler& reference,
                             const core::CampaignScheduler& faulted,
                             const std::vector<std::size_t>& skip,
                             const char* what) {
  const auto ra = reference.results();
  const auto rb = faulted.results();
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (std::find(skip.begin(), skip.end(), i) != skip.end()) continue;
    if (!same_result(ra[i], rb[i]) ||
        reference.action_log(i) != faulted.action_log(i)) {
      std::cerr << "DRILL FAIL (" << what << "): healthy campaign '"
                << ra[i].id << "' diverged from the no-fault run\n";
      return false;
    }
  }
  return true;
}

bool has_incident(const core::CampaignScheduler& s, const std::string& kind) {
  for (const auto& inc : s.incidents())
    if (inc.kind == kind) return true;
  return false;
}

/// Drill 1 — quarantine isolation: a persistent env.step fault in ONE
/// campaign must quarantine exactly that campaign; the other N-1 finish
/// bit-identical to the no-fault reference.
bool drill_quarantine_isolation(const core::CampaignScheduler& reference,
                                const MixedFleet& fleet) {
  util::FaultInjection::disarm_all();
  util::FaultSpec spec;
  spec.site = "env.step";
  spec.scope = "rand-1";  // fleet slot 4
  util::FaultInjection::arm(spec);

  core::CampaignScheduler faulted;
  fleet.populate(faulted);
  faulted.run();
  util::FaultInjection::disarm_all();

  const std::vector<std::size_t> quarantined = faulted.quarantined_slots();
  if (quarantined != std::vector<std::size_t>{4}) {
    std::cerr << "DRILL FAIL (quarantine isolation): expected exactly slot 4 "
                 "(rand-1) quarantined, got "
              << quarantined.size() << " slot(s)\n";
    return false;
  }
  if (!faulted.results()[4].quarantined ||
      faulted.results()[4].quarantine_reason.empty()) {
    std::cerr << "DRILL FAIL (quarantine isolation): result not flagged\n";
    return false;
  }
  if (!healthy_slots_identical(reference, faulted, {4},
                               "quarantine isolation"))
    return false;
  std::cout << "drill: persistent fault quarantined exactly rand-1; "
            << "5/6 campaigns bit-identical to the no-fault run\n";
  return true;
}

/// Drill 2 — transient recovery: a single injected step fault is retried
/// in-wave; the WHOLE fleet (faulted campaign included) finishes
/// bit-identical to the no-fault reference.
bool drill_transient_recovery(const core::CampaignScheduler& reference,
                              const MixedFleet& fleet) {
  util::FaultInjection::disarm_all();
  util::FaultSpec spec;
  spec.site = "env.step";
  spec.scope = "rand-0";
  spec.after = 5;   // let five steps through first
  spec.times = 1;   // then fire exactly once
  util::FaultInjection::arm(spec);

  core::CampaignScheduler faulted;
  fleet.populate(faulted);
  faulted.run();
  util::FaultInjection::disarm_all();

  if (!faulted.quarantined_slots().empty()) {
    std::cerr << "DRILL FAIL (transient recovery): a transient fault "
                 "escalated to quarantine\n";
    return false;
  }
  if (!has_incident(faulted, "retry-recovered")) {
    std::cerr << "DRILL FAIL (transient recovery): no retry-recovered "
                 "incident recorded\n";
    return false;
  }
  if (!same_fleets(reference, faulted, "transient recovery")) return false;
  std::cout << "drill: transient step fault retried in-wave; full fleet "
               "bit-identical to the no-fault run\n";
  return true;
}

/// Drill 3 — NaN rollback: poison the shared agent's weights mid-flight;
/// the health phase must detect it, restore the fleet from the checkpoint
/// ring, and finish bit-identical to the no-fault reference.
bool drill_nan_rollback() {
  util::FaultInjection::disarm_all();
  const MixedFleet fleet(3, 3);

  core::CampaignScheduler::Options ft_opts;
  ft_opts.fault.checkpoint_every_waves = 5;
  ft_opts.fault.checkpoint_ring = 3;

  core::CampaignScheduler reference(ft_opts);
  fleet.populate(reference);
  reference.run();
  if (reference.rollbacks() != 0) {
    std::cerr << "DRILL FAIL (nan rollback): clean reference run rolled "
                 "back\n";
    return false;
  }

  // Fresh fleet (fresh agent) for the poisoned run.
  const MixedFleet poisoned_fleet(3, 3);
  core::CampaignScheduler poisoned(ft_opts);
  poisoned_fleet.populate(poisoned);
  poisoned.run(/*max_waves=*/12);
  poisoned_fleet.agent->trainer().online().parameters()[0]->value(0, 0) =
      std::numeric_limits<double>::quiet_NaN();
  poisoned.run();

  if (poisoned.rollbacks() != 1 || !has_incident(poisoned, "rollback")) {
    std::cerr << "DRILL FAIL (nan rollback): expected exactly one rollback, "
              << "got " << poisoned.rollbacks() << "\n";
    return false;
  }
  if (!poisoned.quarantined_slots().empty()) {
    std::cerr << "DRILL FAIL (nan rollback): rollback leaked into "
                 "quarantine\n";
    return false;
  }
  if (poisoned_fleet.agent->trainer()
          .online()
          .parameters()[0]
          ->value.has_non_finite()) {
    std::cerr << "DRILL FAIL (nan rollback): weights still poisoned after "
                 "rollback\n";
    return false;
  }
  // The frozen policy is deterministic and selector streams were restored,
  // so the re-run of the rolled-back waves reproduces the reference run.
  if (!same_fleets(reference, poisoned, "nan rollback")) return false;
  std::cout << "drill: NaN-poisoned shared agent detected and restored from "
               "the checkpoint ring; fleet bit-identical to the no-fault "
               "run\n";
  return true;
}

/// Drill 4 — checkpoint corruption: truncation and bit-flips must surface
/// as CheckpointCorruptionError (never a silent wrong resume); the intact
/// stream must still load.
bool drill_checkpoint_corruption() {
  util::FaultInjection::disarm_all();
  const MixedFleet fleet(3, 3);
  core::CampaignScheduler burst;
  fleet.populate(burst);
  burst.run(/*max_waves=*/10);
  std::ostringstream out(std::ios::binary);
  core::save_checkpoint(burst, out);
  const std::string bytes = std::move(out).str();

  const auto expect_corruption = [&](const std::string& damaged,
                                     const char* what) {
    core::CampaignScheduler fresh;
    fleet.populate(fresh);
    try {
      std::istringstream in(damaged, std::ios::binary);
      core::load_checkpoint(fresh, in);
    } catch (const core::CheckpointCorruptionError&) {
      return true;
    } catch (const std::exception& e) {
      std::cerr << "DRILL FAIL (corruption/" << what
                << "): wrong error type: " << e.what() << "\n";
      return false;
    }
    std::cerr << "DRILL FAIL (corruption/" << what
              << "): damaged checkpoint loaded without error\n";
    return false;
  };

  if (!expect_corruption(bytes.substr(0, bytes.size() / 2), "truncated"))
    return false;
  std::string flipped = bytes;
  flipped[flipped.size() / 2] = static_cast<char>(flipped[flipped.size() / 2] ^ 0x40);
  if (!expect_corruption(flipped, "bit-flip")) return false;

  core::CampaignScheduler fresh;
  fleet.populate(fresh);
  std::istringstream in(bytes, std::ios::binary);
  core::load_checkpoint(fresh, in);  // intact stream must load
  std::cout << "drill: truncated/bit-flipped checkpoints rejected as "
               "corruption; intact stream loads\n";
  return true;
}

int fault_drill() {
  const MixedFleet fleet(3, 3);
  core::CampaignScheduler reference;
  fleet.populate(reference);
  reference.run();
  if (!reference.incidents().empty()) {
    std::cerr << "DRILL FAIL: no-fault run recorded incidents\n";
    return 1;
  }

  if (!drill_quarantine_isolation(reference, fleet)) return 1;
  if (!drill_transient_recovery(reference, fleet)) return 1;
  if (!drill_nan_rollback()) return 1;
  if (!drill_checkpoint_corruption()) return 1;
  std::cout << "all fault drills passed\n";
  return 0;
}

/// --fault-spec-smoke: the spec comes from the DRCELL_FAULT_SPEC
/// environment variable (the CI ASan job arms 'env.step@rand-1'), not from
/// code — this smokes the env-var parse + arm + fire + quarantine path.
int fault_spec_smoke() {
  if (!util::FaultInjection::enabled()) {
    std::cerr << "SMOKE FAIL: DRCELL_FAULT_SPEC armed nothing (set e.g. "
                 "DRCELL_FAULT_SPEC='env.step@rand-1')\n";
    return 1;
  }
  const MixedFleet fleet(3, 3);
  core::CampaignScheduler scheduler;
  fleet.populate(scheduler);
  scheduler.run();
  if (util::FaultInjection::fires("env.step", "rand-1") == 0) {
    std::cerr << "SMOKE FAIL: env-armed env.step@rand-1 never fired\n";
    return 1;
  }
  if (scheduler.quarantined_slots() != std::vector<std::size_t>{4}) {
    std::cerr << "SMOKE FAIL: expected exactly rand-1 (slot 4) "
                 "quarantined\n";
    return 1;
  }
  std::cout << "fault-spec smoke: env-armed fault fired "
            << util::FaultInjection::fires("env.step", "rand-1")
            << "x and quarantined exactly rand-1\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  // The correctness gates below are within-process bit-identity checks, so
  // they hold under any single exact-contract backend; the perf gate is
  // shape-level (shared registry vs rebuilt) and backend-agnostic.
  const std::string backend = bench::select_backend(argc, argv);
  const std::string json =
      bench::json_path(argc, argv, "BENCH_multi_campaign.json");
  bool perf_gate = true;
  bool smoke_only = false;
  bool drill_only = false;
  bool spec_smoke_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--no-perf-gate") perf_gate = false;
    if (std::string(argv[i]) == "--resume-smoke") smoke_only = true;
    if (std::string(argv[i]) == "--fault-drill") drill_only = true;
    if (std::string(argv[i]) == "--fault-spec-smoke") spec_smoke_only = true;
  }
  if (smoke_only) return resume_smoke();
  if (drill_only) return fault_drill();
  if (spec_smoke_only) return fault_spec_smoke();

  Stopwatch total;
  JsonReporter report("multi_campaign", quick);
  report.set_backend(backend);
  std::cout << "multi-campaign serving bench (" << (quick ? "quick" : "full")
            << " mode)\n\n";

  // --- Correctness gates (always hard) ---------------------------------
  if (!gate_batched_bit_identity()) return 1;
  if (!gate_shared_cache(quick ? 4 : 8)) return 1;
  if (resume_smoke() != 0) return 1;

  // --- Shared-registry perf pair ---------------------------------------
  // Optimised: N same-geometry generators against a warm registry pay one
  // lookup each. Reference: the registry is reset before every build, so
  // each generator pays the full 1000-cell spatial Cholesky — exactly what
  // every campaign of a fleet paid before the process-wide cache.
  {
    const auto coords = data::grid_coords(25, 40, 100.0, 100.0);
    data::FieldParams params;
    params.spatial_length = 600.0;
    params.nugget = 0.02;
    params.num_modes = 6;
    const std::size_t gens_per_call = 4;
    const auto build_fleet_fields = [&] {
      for (std::size_t i = 0; i < gens_per_call; ++i) {
        data::SyntheticFieldGenerator gen(coords);
        Rng rng(400 + i);
        gen.generate(params, 2, rng);
      }
    };
    data::SyntheticFieldGenerator::reset_shared_factor_cache();
    const auto warm =
        measure_ms(build_fleet_fields, quick ? 200.0 : 600.0, 50);
    const auto cold = measure_ms(
        [&] {
          data::SyntheticFieldGenerator::reset_shared_factor_cache();
          build_fleet_fields();
        },
        quick ? 300.0 : 1000.0, 50);
    report.add_with_reference("multi_campaign_field_gen_shared_cache",
                              warm.wall_ms, warm.iterations,
                              1e3 / warm.wall_ms, cold.wall_ms,
                              cold.iterations);
    std::cout << "shared-registry field gen: " << format_double(warm.wall_ms, 1)
              << " ms warm vs " << format_double(cold.wall_ms, 1)
              << " ms cold ("
              << format_double(
                     report.speedup("multi_campaign_field_gen_shared_cache"), 2)
              << "x)\n";
    if (perf_gate &&
        report.speedup("multi_campaign_field_gen_shared_cache") < 3.0) {
      std::cerr << "PERF GATE FAIL: shared factor registry speedup < 3x\n";
      return 1;
    }
  }

  // --- Batched-wave perf pair ------------------------------------------
  // A pure serving fleet (32 frozen DR-Cell campaigns, one shared agent) on
  // the 36-cell task: batched waves score all campaigns with one
  // forward_batch; the unbatched reference runs 32 B = 1 forwards. Context
  // number (no hard gate): the win is batching overhead amortisation, and
  // at fleet sizes this small it is expected to be modest.
  {
    const std::size_t fleet_size = quick ? 8 : 32;
    const MixedFleet fleet(fleet_size, 0);
    const auto run_fleet = [&](bool batching) {
      core::CampaignScheduler::Options opts;
      opts.cross_campaign_batching = batching;
      core::CampaignScheduler scheduler(opts);
      fleet.populate(scheduler);
      scheduler.run(/*max_waves=*/quick ? 10 : 20);
    };
    const auto batched = measure_ms([&] { run_fleet(true); },
                                    quick ? 200.0 : 500.0, 20);
    const auto unbatched = measure_ms([&] { run_fleet(false); },
                                      quick ? 200.0 : 500.0, 20);
    report.add_with_reference("multi_campaign_batched_wave", batched.wall_ms,
                              batched.iterations, 1e3 / batched.wall_ms,
                              unbatched.wall_ms, unbatched.iterations);
    std::cout << "batched wave (" << fleet_size
              << " campaigns, shared agent): "
              << format_double(batched.wall_ms, 1) << " ms vs "
              << format_double(unbatched.wall_ms, 1) << " ms unbatched ("
              << format_double(report.speedup("multi_campaign_batched_wave"),
                               2)
              << "x)\n";
  }

  // --- Concurrent-campaign tiers ---------------------------------------
  // Aggregate serving throughput: N city-scale campaigns to completion,
  // reported as sensing cycles finished per second across the fleet.
  const std::vector<std::size_t> tiers =
      quick ? std::vector<std::size_t>{5, 20}
            : std::vector<std::size_t>{10, 100, 1000};
  for (const std::size_t n : tiers) {
    CityFleetSpec spec;
    spec.campaigns = n;
    spec.cycles = quick ? 2 : 4;
    core::CampaignScheduler scheduler;
    populate_city_fleet(scheduler, spec);
    Stopwatch sw;
    scheduler.run();
    const double ms = sw.elapsed_ms();
    std::size_t fleet_cycles = 0;
    for (const auto& r : scheduler.results()) fleet_cycles += r.cycles;
    const double cycles_per_sec = 1e3 * static_cast<double>(fleet_cycles) / ms;
    const std::string op = "multi_campaign_cycles_" + std::to_string(n);
    report.add(op, ms, 1, cycles_per_sec);
    std::cout << op << ": " << n << " campaigns, " << fleet_cycles
              << " cycles in " << format_double(ms, 0) << " ms ("
              << format_double(cycles_per_sec, 1) << " cycles/s)\n";
  }

  // --- Multicore lane: 100-campaign tier at workers in {1, 4, ncores} ---
  // Hard-gates worker-count invariance: every worker count must produce the
  // identical fleet trace (the pooled STEP phase is index-exclusive).
  {
    const std::size_t tier = quick ? 12 : 100;
    // "Workers" here counts executing lanes (pool threads + the
    // participating caller), so lane 1 is the serial floor and lane ncores
    // saturates the machine.
    const std::size_t ncores = util::ThreadPool::default_worker_count() + 1;
    std::vector<std::size_t> worker_counts{1, 4};
    if (ncores != 1 && ncores != 4) worker_counts.push_back(ncores);
    std::unique_ptr<core::CampaignScheduler> reference;
    for (const std::size_t workers : worker_counts) {
      util::ThreadPool pool(workers - 1);
      core::CampaignScheduler::Options opts;
      opts.pool = &pool;
      auto scheduler = std::make_unique<core::CampaignScheduler>(opts);
      CityFleetSpec spec;
      spec.campaigns = tier;
      spec.cycles = quick ? 2 : 4;
      populate_city_fleet(*scheduler, spec);
      Stopwatch sw;
      scheduler->run();
      const double ms = sw.elapsed_ms();
      std::size_t fleet_cycles = 0;
      for (const auto& r : scheduler->results()) fleet_cycles += r.cycles;
      const std::string op = "multi_campaign_" + std::to_string(tier) +
                             "_workers" + std::to_string(workers);
      report.add(op, ms, 1,
                 1e3 * static_cast<double>(fleet_cycles) / ms);
      std::cout << op << ": " << format_double(ms, 0) << " ms\n";
      if (reference == nullptr) {
        reference = std::move(scheduler);
      } else if (!same_fleets(*reference, *scheduler,
                              "worker-count invariance")) {
        return 1;
      }
    }
    std::cout << "gate: fleet trace identical for all worker counts\n";
  }

  std::cout << "\nall gates passed\n";
  return bench::finish_report(report, json, total);
}
