// Ablation A4 (DESIGN.md): the inference substrate. Sweeps the ALS rank
// and the inference-window length under RANDOM selection, reporting the
// deployed budget and quality — the knobs that decide whether compressive
// sensing has enough structure and history to work with.
#include "bench_common.h"

using namespace drcell;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::string json = bench::json_path(argc, argv, "BENCH_ablation_inference.json");
  bench::JsonReporter report("a4_inference", quick);
  Stopwatch total_watch;

  const auto dataset = data::make_sensorscope_like(2018);
  auto slices = bench::make_slices(dataset.temperature, 48, 96);
  slices.test_task = std::make_shared<const mcs::SensingTask>(
      slices.test_task->slice_cycles(0, quick ? 48 : 96));
  const double epsilon = 0.3;
  const std::size_t cells = dataset.temperature.num_cells();

  TablePrinter rank_table({"ALS rank", "avg cells/cycle", "satisfaction",
                           "MAE (degC)"});
  for (const std::size_t rank :
       {std::size_t{2}, std::size_t{5}, std::size_t{8}}) {
    core::DrCellConfig config = bench::paper_config(cells, 48, 1000);
    core::CampaignConfig campaign;
    campaign.epsilon = epsilon;
    campaign.p = 0.9;
    campaign.env = config.env;
    campaign.env.warm_start = slices.test_warm;
    cs::MatrixCompletionOptions options;
    options.rank = rank;
    auto engine = std::make_shared<cs::MatrixCompletion>(options);
    baselines::RandomSelector random(7);
    const auto r =
        core::run_campaign(slices.test_task, engine, random, campaign);
    rank_table.add_row(std::to_string(rank),
                       {r.avg_cells_per_cycle, r.satisfaction_ratio,
                        r.mean_cycle_error});
  }
  std::cout << "A4a — ALS rank sweep (RANDOM selection, temperature, "
               "(0.3 degC, 0.9)-quality):\n";
  rank_table.print(std::cout);

  TablePrinter window_table({"window (cycles)", "avg cells/cycle",
                             "satisfaction", "MAE (degC)"});
  for (const std::size_t window :
       {std::size_t{12}, std::size_t{24}, std::size_t{48}}) {
    core::DrCellConfig config = bench::paper_config(cells, window, 1000);
    core::CampaignConfig campaign;
    campaign.epsilon = epsilon;
    campaign.p = 0.9;
    campaign.env = config.env;
    campaign.env.warm_start = slices.test_warm;
    baselines::RandomSelector random(8);
    const auto r = core::run_campaign(slices.test_task, bench::paper_engine(),
                                      random, campaign);
    window_table.add_row(std::to_string(window),
                         {r.avg_cells_per_cycle, r.satisfaction_ratio,
                          r.mean_cycle_error});
  }
  std::cout << "\nA4b — inference window sweep (RANDOM selection):\n";
  window_table.print(std::cout);
  return bench::finish_report(report, json, total_watch);
}
