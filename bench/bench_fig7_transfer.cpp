// Reproduces Fig. 7 of the paper: transfer learning between the correlated
// temperature and humidity tasks of the Sensor-Scope dataset, both ways.
// The source task trains on 2 days of data; the target task has only 10
// cycles (5 hours). Arms, as in Sec. 5.4:
//   TRANSFER     source weights + fine-tuning on the 10 target cycles
//   NO-TRANSFER  source weights applied unchanged
//   SHORT-TRAIN  fresh agent trained only on the 10 target cycles
//   RANDOM       no learning
//
// Expected shape: TRANSFER needs the fewest cells; NO-TRANSFER and
// SHORT-TRAIN may even fall behind RANDOM (the paper observes exactly that
// for the humidity-as-target direction).
#include "bench_common.h"
#include "core/transfer.h"

using namespace drcell;

namespace {

void run_direction(const std::string& label, const mcs::SensingTask& source,
                   const mcs::SensingTask& target, double source_epsilon,
                   double target_epsilon, std::size_t episodes, bool quick) {
  const std::size_t cells = source.num_cells();
  const std::size_t window = 48;
  core::DrCellConfig config =
      bench::paper_config(cells, window, /*decay_steps=*/episodes * 500);

  // Source task: full preliminary study (warm day + 2 training days).
  auto source_slices = bench::make_slices(source, 48, 96);
  std::cout << "[" << label << "] training source agent...\n";
  auto source_agent =
      bench::train_drcell(source_slices, source_epsilon, config, episodes);

  // Target task: 10 cycles of training data, testing stage afterwards.
  core::TransferOptions transfer_options;
  transfer_options.target_training_cycles = 10;
  transfer_options.fine_tune_episodes = quick ? 3 : 10;
  transfer_options.epsilon = target_epsilon;

  // The target testing stage starts after the 10 known cycles; its window
  // is warmed by those cycles only (everything the organiser has).
  bench::ExperimentSlices target_slices;
  const std::size_t test_begin = 10;
  const std::size_t test_end =
      quick ? std::min<std::size_t>(58, target.num_cycles())
            : target.num_cycles();
  target_slices.test_task = std::make_shared<const mcs::SensingTask>(
      target.slice_cycles(test_begin, test_end));
  target_slices.test_warm =
      target.slice_cycles(0, test_begin).ground_truth();

  std::cout << "[" << label << "] building arms...\n";
  auto engine = bench::paper_engine();
  auto transferred = core::transfer_agent(source_agent, target, engine,
                                          transfer_options);
  auto short_trained =
      core::short_train_agent(config, target, engine, transfer_options);
  core::DrCellAgent no_transfer(cells, config);
  source_agent.copy_weights_to(no_transfer);

  core::DrCellPolicy transfer_policy(transferred);
  core::DrCellPolicy no_transfer_policy(no_transfer);
  core::DrCellPolicy short_train_policy(short_trained);
  baselines::RandomSelector random(55);

  struct Arm {
    const char* name;
    baselines::CellSelector* selector;
  };
  const Arm arms[] = {{"TRANSFER", &transfer_policy},
                      {"NO-TRANSFER", &no_transfer_policy},
                      {"SHORT-TRAIN", &short_train_policy},
                      {"RANDOM", &random}};

  TablePrinter table({"arm", "avg cells/cycle", "satisfaction"});
  for (const auto& arm : arms) {
    const auto r = bench::evaluate(target_slices, *arm.selector,
                                   target_epsilon, 0.9, config);
    table.add_row(arm.name,
                  {r.avg_cells_per_cycle, r.satisfaction_ratio});
  }
  std::cout << "\nFig. 7 (" << label << ", (epsilon = " << target_epsilon
            << ", p = 0.9), target trained on 10 cycles):\n";
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::string json = bench::json_path(argc, argv, "BENCH_fig7.json");
  bench::JsonReporter report("fig7_transfer", quick);
  const std::size_t episodes = quick ? 3 : 10;
  Stopwatch total;

  const auto dataset = data::make_sensorscope_like(2018);
  Stopwatch direction_watch;
  run_direction("temperature -> humidity", dataset.temperature,
                dataset.humidity, /*source_epsilon=*/0.3,
                /*target_epsilon=*/1.5, episodes, quick);
  double ms = direction_watch.elapsed_ms();
  report.add("temperature_to_humidity", ms, 1, 1e3 / ms);
  direction_watch.reset();
  run_direction("humidity -> temperature", dataset.humidity,
                dataset.temperature, /*source_epsilon=*/1.5,
                /*target_epsilon=*/0.3, episodes, quick);
  ms = direction_watch.elapsed_ms();
  report.add("humidity_to_temperature", ms, 1, 1e3 / ms);

  std::cout << "total bench time: "
            << format_double(total.elapsed_seconds(), 1) << " s\n";
  return bench::finish_report(report, json, total);
}
