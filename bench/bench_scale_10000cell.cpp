// The 10,000-cell metro-scale workload (ROADMAP 10k tier), unlocked by the
// low-rank Nyström spatial sampler in data/synthetic_field.h: the exact
// O(cells³) Cholesky that generates every smaller dataset would need
// ~3·10¹¹ flops and an 800 MB kernel matrix at this size, the Nyström
// factor needs O(cells·k²) with k = 256 landmarks. The bench measures the
// sampler (cold, cached, and paired against the exact factorisation at the
// largest size where the exact path is still feasible), the completion fit
// on a 10,000 x 48 window, and a full sensing cycle end to end.
//
// CI runs this bench with --quick and uploads the JSON as an artifact; the
// committed-baseline comparison gates only the 1000-cell bench
// (tools/compare_bench.py refuses quick-mode reports — policy in
// bench/README.md).
//
//   ./build/bench_scale_10000cell [--quick] [--json [path]]
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "data/synthetic_field.h"
#include "mcs/environment.h"
#include "mcs/quality.h"
#include "rl/dqn_trainer.h"
#include "rl/drqn_qnetwork.h"
#include "util/rng.h"

using namespace drcell;

namespace {

constexpr std::size_t kWindowCycles = 48;
constexpr double kSparseDensity = 0.10;

/// Field-sampler pairs. `scale_field_sample_10000cell` is the headline: a
/// cold 10,000-cell Nyström draw against the exact dense Cholesky at 2,000
/// cells — the largest size where the exact path still fits a bench budget.
/// NB the reference solves 1/5th the cells, so the reported ratio *heavily
/// understates* the true same-size gap; `scale_field_sample_2000cell_lowrank`
/// makes that gap concrete by running both samplers on the identical
/// 2,000-cell problem.
void bench_field_samplers(bench::JsonReporter& report, bool quick) {
  const std::size_t cycles = 4;  // keep the assemble step negligible
  const auto metro_coords = data::grid_coords(100, 100, 100.0, 100.0);
  const auto mid_coords = data::grid_coords(40, 50, 100.0, 100.0);
  const data::FieldParams metro = data::metro_scale_field_params();
  data::FieldParams mid_exact = metro;
  mid_exact.nystrom_threshold = 100000;  // force exact at 2,000 cells
  data::FieldParams mid_lowrank = metro;
  mid_lowrank.nystrom_threshold = 0;  // force Nyström at 2,000 cells

  const double target = quick ? 400.0 : 1500.0;
  Rng rng(3);
  // Fresh generator per iteration: every draw pays the cold factorisation
  // (the cached path is measured separately below).
  const auto nystrom_10k = bench::measure_ms(
      [&] {
        data::SyntheticFieldGenerator gen(metro_coords);
        (void)gen.generate(metro, cycles, rng);
      },
      target, 50);
  const auto exact_2k = bench::measure_ms(
      [&] {
        data::SyntheticFieldGenerator gen(mid_coords);
        (void)gen.generate(mid_exact, cycles, rng);
      },
      target, 50);
  const auto nystrom_2k = bench::measure_ms(
      [&] {
        data::SyntheticFieldGenerator gen(mid_coords);
        (void)gen.generate(mid_lowrank, cycles, rng);
      },
      target, 50);

  report.add_with_reference("scale_field_sample_10000cell",
                            nystrom_10k.wall_ms, nystrom_10k.iterations,
                            1e3 / nystrom_10k.wall_ms, exact_2k.wall_ms,
                            exact_2k.iterations);
  report.add_with_reference("scale_field_sample_2000cell_lowrank",
                            nystrom_2k.wall_ms, nystrom_2k.iterations,
                            1e3 / nystrom_2k.wall_ms, exact_2k.wall_ms,
                            exact_2k.iterations);
  std::cout << "field sample: Nyström@10000 "
            << format_double(nystrom_10k.wall_ms, 1) << " ms, exact@2000 "
            << format_double(exact_2k.wall_ms, 1) << " ms, Nyström@2000 "
            << format_double(nystrom_2k.wall_ms, 1)
            << " ms (same-size speedup "
            << format_double(exact_2k.wall_ms / nystrom_2k.wall_ms, 2)
            << "x)\n";

  // The spatial-factor cache (keyed by the FieldParams fingerprint): one
  // generator re-generating episodes pays the Nyström build once.
  data::SyntheticFieldGenerator cached_gen(metro_coords);
  (void)cached_gen.generate(metro, cycles, rng);  // populate the cache
  const auto cached = bench::measure_ms(
      [&] { (void)cached_gen.generate(metro, cycles, rng); }, target, 50);
  report.add_with_reference("scale_field_regen_cached_10000cell",
                            cached.wall_ms, cached.iterations,
                            1e3 / cached.wall_ms, nystrom_10k.wall_ms,
                            nystrom_10k.iterations);
  std::cout << "  cached regen@10000 " << format_double(cached.wall_ms, 1)
            << " ms (" << cached_gen.factor_cache_hits()
            << " factor cache hits)\n";
}

/// 10,000 x 48 window: the first half fully observed (warm start), the rest
/// at the 10% scale-target density.
cs::PartialMatrix make_metro_window(const mcs::SensingTask& task) {
  cs::PartialMatrix window(task.num_cells(), kWindowCycles);
  Rng rng(3);
  for (std::size_t c = 0; c < kWindowCycles; ++c)
    for (std::size_t cell = 0; cell < task.num_cells(); ++cell)
      if (c < kWindowCycles / 2 || rng.bernoulli(kSparseDensity))
        window.set(cell, c, task.truth(cell, c));
  return window;
}

void bench_completion(const mcs::SensingTask& task,
                      bench::JsonReporter& report, bool quick) {
  const auto window = make_metro_window(task);
  cs::MatrixCompletionOptions cold_opts;
  cold_opts.warm_start = false;
  const cs::MatrixCompletion cold(cold_opts);
  const auto run = bench::measure_ms(
      [&] { (void)cold.infer(window); }, quick ? 400.0 : 1200.0, 20);
  report.add("metro_als_infer_cold", run.wall_ms, run.iterations,
             1e3 / run.wall_ms);
  std::cout << "10000-cell cold ALS infer: " << format_double(run.wall_ms, 1)
            << " ms\n";
}

void bench_environment(const mcs::SensingTask& task,
                       bench::JsonReporter& report, bool quick) {
  auto test_task = std::make_shared<const mcs::SensingTask>(
      task.slice_cycles(kWindowCycles, task.num_cycles()));
  mcs::EnvOptions options;
  options.inference_window = kWindowCycles;
  options.min_observations = 10;
  options.max_selections_per_cycle = 300;  // sense at most 3% of the metro
  options.warm_start = task.slice_cycles(0, kWindowCycles).ground_truth();
  auto env = mcs::SparseMcsEnvironment(
      test_task, std::make_shared<cs::MatrixCompletion>(),
      std::make_shared<mcs::LooBayesianGate>(1.0, 0.9), options);
  Rng rng(5);
  const auto pick = [&rng](const mcs::SparseMcsEnvironment& e) {
    const auto& allowed = e.unsensed_cells();
    return allowed[rng.uniform_index(allowed.size())];
  };
  const auto cycle = bench::measure_ms(
      [&] {
        if (env.episode_done()) env.reset();
        (void)env.run_cycle(pick);
      },
      quick ? 500.0 : 1500.0, 20);
  report.add("metro_environment_cycle", cycle.wall_ms, cycle.iterations,
             1e3 / cycle.wall_ms);
  std::cout << "10000-cell environment sensing cycle: "
            << format_double(cycle.wall_ms, 1) << " ms ("
            << format_double(1e3 / cycle.wall_ms, 2) << " cycles/s)\n";
}

/// ~`count` distinct ascending indices in [lo, hi) — a step row's
/// selection-union ones.
std::vector<std::uint32_t> random_ones(std::size_t lo, std::size_t hi,
                                       std::size_t count, Rng& rng) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(static_cast<std::uint32_t>(lo + rng.uniform_index(hi - lo)));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// The metro training tier headline: one full batched DRQN train step at
/// 10,000 cells through the sparse gather + candidate-subset engine,
/// against the dense full-action engine (force_dense_batch, 10k-wide mask
/// bootstrap and TD loss) on equivalent transitions. The pair carries a
/// hard >=3x self-gate in main() (skipped with --quick / --no-perf-gate;
/// tests/sparse_gather_test.cpp pins the covering-candidate bit-identity
/// separately).
void bench_train_step(bench::JsonReporter& report, bool quick) {
  const std::size_t cells = 10000, k = 2, pool = 256;
  const std::size_t ones_per_step = 300;  // the per-cycle selection cap
  const std::size_t n_candidates = 64;

  const auto make_trainer = [&](bool candidate) {
    rl::DqnOptions opt;
    opt.batch_size = 32;
    opt.min_replay = 32;
    opt.replay_capacity = pool;
    opt.candidate_training = candidate;
    opt.force_dense_batch = !candidate;
    Rng rng(17);
    return rl::DqnTrainer(
        std::make_unique<rl::DrqnQNetwork>(cells, k, 64, 0, rng), opt, 23);
  };
  rl::DqnTrainer fast = make_trainer(true);
  rl::DqnTrainer dense = make_trainer(false);

  Rng fill(29);
  for (std::size_t i = 0; i < pool; ++i) {
    rl::Experience e;
    e.sparse_states = true;
    for (std::size_t j = 0; j < k; ++j) {
      const auto ones =
          random_ones(j * cells, (j + 1) * cells, ones_per_step, fill);
      e.state_ones.insert(e.state_ones.end(), ones.begin(), ones.end());
      const auto next =
          random_ones(j * cells, (j + 1) * cells, ones_per_step, fill);
      e.next_state_ones.insert(e.next_state_ones.end(), next.begin(),
                               next.end());
    }
    e.action = fill.uniform_index(cells);
    e.reward = fill.uniform(-1.0, 2.0);
    e.terminal = fill.bernoulli(0.1);

    rl::Experience full = e;
    e.next_candidates = random_ones(0, cells, n_candidates, fill);
    full.next_mask.assign(cells, 1);
    fast.observe(std::move(e));
    dense.observe(std::move(full));
  }

  const auto fast_run = bench::measure_ms(
      [&] { (void)fast.train_step(); }, quick ? 300.0 : 900.0, 2000);
  // The dense step moves four [32 x 10000] state matrices plus the
  // full-width loss per iteration; cap its budget tightly.
  const auto dense_run = bench::measure_ms(
      [&] { (void)dense.train_step(); }, quick ? 300.0 : 900.0, 20);
  report.add_with_reference("scale_train_step_10000cell", fast_run.wall_ms,
                            fast_run.iterations, 1e3 / fast_run.wall_ms,
                            dense_run.wall_ms, dense_run.iterations);
  std::cout << "10000-cell DRQN train step: sparse+candidates "
            << format_double(fast_run.wall_ms, 2) << " ms, dense full-action "
            << format_double(dense_run.wall_ms, 2) << " ms, speedup "
            << format_double(dense_run.wall_ms / fast_run.wall_ms, 2)
            << "x\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::string backend = bench::select_backend(argc, argv);
  const std::string json =
      bench::json_path(argc, argv, "BENCH_scale_10000cell.json");
  bench::JsonReporter report("scale_10000cell", quick);
  report.set_backend(backend);
  Stopwatch total;

  std::cout << "generating 10000-cell metro-scale task (100 x 100 grid, "
               "Nyström sampler)...\n";
  Stopwatch gen_watch;
  const auto task = data::make_metro_scale_task(100, 100, quick ? 72 : 96);
  const double gen_ms = gen_watch.elapsed_ms();
  report.add("metro_scale_generation", gen_ms, 1, 1e3 / gen_ms);
  std::cout << "  " << task.num_cells() << " cells x " << task.num_cycles()
            << " cycles in " << format_double(gen_ms / 1e3, 2) << " s\n";

  bench_field_samplers(report, quick);
  bench_completion(task, report, quick);
  bench_environment(task, report, quick);
  bench_train_step(report, quick);

  std::cout << "total bench time: "
            << format_double(total.elapsed_seconds(), 1) << " s\n";
  // Write the report before gating so the artifact exists for debugging.
  const int exit_code = bench::finish_report(report, json, total);

  // Hard self-gate for the metro training tier: the sparse gather +
  // candidate-subset train step must stay >= 3x ahead of the dense
  // full-action engine. --no-perf-gate (and quick mode, whose budgets are
  // too short for stable ratios) skips it; unoptimised builds always do.
  bool no_gate = quick;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--no-perf-gate") == 0) no_gate = true;
#ifndef NDEBUG
  no_gate = true;
#endif
  const double train_speedup = report.speedup("scale_train_step_10000cell");
  if (!no_gate && train_speedup < 3.0) {
    std::cerr << "PERF REGRESSION: 10000-cell train step speedup "
              << format_double(train_speedup, 2) << "x (must be >= 3x)\n";
    return 1;
  }
  return exit_code;
}
