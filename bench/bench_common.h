// Shared experiment plumbing for the paper-reproduction benches.
//
// Cycle allocation per dataset (mirrors Sec. 5.3): a fully-observed
// preliminary-study block warms up the inference window, the next block is
// the DRQN training stage, and the remainder is the deployed testing stage
// under the leave-one-out Bayesian (epsilon, p) gate.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/qbc_selector.h"
#include "baselines/random_selector.h"
#include "core/campaign.h"
#include "core/policy.h"
#include "core/trainer.h"
#include "cs/matrix_completion.h"
#include "data/datasets.h"
#include "linalg/backend.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace drcell::bench {

/// `--quick` (or DRCELL_QUICK=1) shrinks budgets ~4x for smoke runs.
inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--quick") return true;
  const char* env = std::getenv("DRCELL_QUICK");
  return env != nullptr && std::string(env) == "1";
}

/// `--backend <name>` selects the compute backend for the run (same
/// registry as the DRCELL_BACKEND env var; unknown names fail loudly via
/// the registry's check). Returns the selected backend's name so benches
/// can stamp it into their report; without the flag the default selection
/// order applies untouched. Gate policy: the hard perf and bit-identity
/// gates are calibrated for the native backend — benches relax or skip
/// them when another backend is selected (bench/README.md).
inline std::string select_backend(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--backend" && i + 1 < argc) {
      BackendRegistry::set_active(argv[i + 1]);
      break;
    }
  return BackendRegistry::active().name();
}

/// `--json [path]` enables the machine-readable perf report. With no path
/// the bench's default (e.g. BENCH_micro.json) is used; returns "" when the
/// flag is absent.
inline std::string json_path(int argc, char** argv,
                             const std::string& default_path) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--json") continue;
    if (i + 1 < argc && argv[i + 1][0] != '-') return argv[i + 1];
    return default_path;
  }
  return "";
}

/// Collects measurements and writes the BENCH_*.json perf report consumed
/// by CI and by future PRs comparing against this baseline. Schema is
/// documented in bench/README.md.
class JsonReporter {
 public:
  JsonReporter(std::string bench, bool quick)
      : bench_(std::move(bench)), quick_(quick) {}

  /// Stamps the compute backend the run executed under into the report
  /// (consumers ignore unknown keys, so older tooling is unaffected).
  void set_backend(std::string backend) { backend_ = std::move(backend); }

  /// Stamps the machine's core count into the report so scaling-efficiency
  /// baselines are interpretable (a ~1.0 pooled ratio recorded on a 1-core
  /// box is expected, not a regression) — consumers ignore unknown keys.
  void set_hardware_concurrency(unsigned cores) { cores_ = cores; }

  /// Records one op. `wall_ms` is the mean wall time of a single execution;
  /// `per_sec` is how many such executions fit in a second (for campaign
  /// benches this is sensing cycles per second).
  void add(const std::string& op, double wall_ms, double iterations,
           double per_sec) {
    entries_.push_back({op, wall_ms, iterations, per_sec, 0.0, false});
  }

  /// Records an optimised op together with the wall time of the retained
  /// naive reference implementation; the speedup lands in the report. The
  /// two runs are measured independently, so each carries its own iteration
  /// count.
  void add_with_reference(const std::string& op, double wall_ms,
                          double iterations, double per_sec,
                          double naive_wall_ms, double naive_iterations) {
    entries_.push_back({op, wall_ms, iterations, per_sec,
                        naive_wall_ms / wall_ms, true});
    entries_.push_back({op + "_naive_reference", naive_wall_ms,
                        naive_iterations, 1e3 / naive_wall_ms, 0.0, false});
  }

  double speedup(const std::string& op) const {
    for (const auto& e : entries_)
      if (e.op == op && e.has_speedup) return e.speedup;
    return 0.0;
  }

  /// Returns false (after printing why) when the report cannot be written,
  /// so benches can exit non-zero instead of silently dropping the artifact.
  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << '\n';
      return false;
    }
    out << "{\n  \"bench\": \"" << bench_ << "\",\n  \"quick\": "
        << (quick_ ? "true" : "false");
    if (!backend_.empty()) out << ",\n  \"backend\": \"" << backend_ << "\"";
    if (cores_ > 0) out << ",\n  \"hardware_concurrency\": " << cores_;
    out << ",\n  \"entries\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out << "    {\"op\": \"" << e.op << "\", \"wall_ms\": "
          << format_double(e.wall_ms, 4) << ", \"iterations\": "
          << format_double(e.iterations, 0) << ", \"per_sec\": "
          << format_double(e.per_sec, 2);
      if (e.has_speedup)
        out << ", \"speedup_vs_naive\": " << format_double(e.speedup, 2);
      out << "}" << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    out.flush();
    if (!out.good()) {
      std::cerr << "failed while writing " << path << '\n';
      return false;
    }
    std::cout << "wrote " << path << '\n';
    return true;
  }

 private:
  struct Entry {
    std::string op;
    double wall_ms = 0.0;
    double iterations = 0.0;
    double per_sec = 0.0;
    double speedup = 0.0;
    bool has_speedup = false;
  };
  std::string bench_;
  bool quick_;
  std::string backend_;
  unsigned cores_ = 0;
  std::vector<Entry> entries_;
};

/// Standard bench epilogue: records total wall time and writes the JSON
/// report when --json was given. Returns the process exit code.
inline int finish_report(JsonReporter& report, const std::string& json,
                         const Stopwatch& total) {
  const double total_ms = total.elapsed_ms();
  report.add("total", total_ms, 1, 1e3 / total_ms);
  if (!json.empty() && !report.write(json)) return 1;
  return 0;
}

struct Measurement {
  double wall_ms = 0.0;  ///< mean wall time per call
  int iterations = 0;
};

/// Times `f` by running it until ~`target_ms` of wall time has accumulated
/// (after one untimed warm-up call), capped at `max_iters` executions.
template <typename F>
Measurement measure_ms(F&& f, double target_ms = 300.0, int max_iters = 1000) {
  f();  // warm-up: page in code and data, populate solver caches
  Measurement m;
  Stopwatch sw;
  while (m.iterations < max_iters) {
    f();
    ++m.iterations;
    if (sw.elapsed_ms() >= target_ms && m.iterations >= 3) break;
  }
  m.wall_ms = sw.elapsed_ms() / m.iterations;
  return m;
}

struct ExperimentSlices {
  std::shared_ptr<const mcs::SensingTask> train_task;
  std::shared_ptr<const mcs::SensingTask> test_task;
  Matrix train_warm;  ///< dense block preceding the training slice
  Matrix test_warm;   ///< dense block preceding the testing slice
};

/// Splits a task into warm/train/test blocks:
///   [0, warm)            fully observed preliminary data
///   [warm, warm+train)   training stage cycles
///   [warm+train, end)    testing stage cycles
/// The training environment is warmed by [0, warm); the testing environment
/// by the trailing `warm` cycles of the preliminary+training period (all of
/// which the organiser observed densely during the study).
inline ExperimentSlices make_slices(const mcs::SensingTask& full,
                                    std::size_t warm, std::size_t train) {
  ExperimentSlices s;
  s.train_task = std::make_shared<const mcs::SensingTask>(
      full.slice_cycles(warm, warm + train));
  s.test_task = std::make_shared<const mcs::SensingTask>(
      full.slice_cycles(warm + train, full.num_cycles()));
  s.train_warm = full.slice_cycles(0, warm).ground_truth();
  s.test_warm = full.slice_cycles(train, warm + train).ground_truth();
  return s;
}

/// The hyper-parameters used across the evaluation benches.
inline core::DrCellConfig paper_config(std::size_t num_cells,
                                       std::size_t window,
                                       std::size_t decay_steps) {
  core::DrCellConfig config;
  config.history_cycles = 2;
  config.lstm_hidden = 64;
  config.dqn.gamma = 0.9;
  config.dqn.learning_rate = 1e-3;
  config.dqn.batch_size = 32;
  config.dqn.min_replay = 256;
  config.dqn.replay_capacity = 20000;
  config.dqn.target_sync_interval = 150;
  config.dqn.epsilon = rl::EpsilonSchedule(1.0, 0.05, decay_steps);
  config.env.min_observations = 4;
  config.env.inference_window = window;
  config.env.reward_bonus = static_cast<double>(num_cells);
  config.env.cost = 1.0;
  return config;
}

inline cs::InferenceEnginePtr paper_engine() {
  return std::make_shared<cs::MatrixCompletion>();
}

/// Trains a DR-Cell agent on the training slice (ground-truth gate at
/// `epsilon`, warm-started window), as in the paper's training stage.
inline core::DrCellAgent train_drcell(const ExperimentSlices& slices,
                                      double epsilon,
                                      core::DrCellConfig config,
                                      std::size_t episodes,
                                      double* seconds = nullptr) {
  config.env.warm_start = slices.train_warm;
  core::DrCellAgent agent(slices.train_task->num_cells(), config);
  auto env = core::make_training_environment(slices.train_task,
                                             paper_engine(), epsilon, config);
  const auto result = core::train_agent(agent, env, episodes);
  if (seconds != nullptr) *seconds = result.seconds;
  return agent;
}

/// Runs the testing stage for one selector.
inline core::CampaignResult evaluate(const ExperimentSlices& slices,
                                     baselines::CellSelector& selector,
                                     double epsilon, double p,
                                     const core::DrCellConfig& config) {
  core::CampaignConfig campaign;
  campaign.epsilon = epsilon;
  campaign.p = p;
  campaign.env = config.env;
  campaign.env.history_cycles = config.history_cycles;
  campaign.env.warm_start = slices.test_warm;
  return core::run_campaign(slices.test_task, paper_engine(), selector,
                            campaign);
}

inline std::string pct(double fraction) {
  return format_double(100.0 * fraction, 1) + "%";
}

}  // namespace drcell::bench
