// Shared experiment plumbing for the paper-reproduction benches.
//
// Cycle allocation per dataset (mirrors Sec. 5.3): a fully-observed
// preliminary-study block warms up the inference window, the next block is
// the DRQN training stage, and the remainder is the deployed testing stage
// under the leave-one-out Bayesian (epsilon, p) gate.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "baselines/qbc_selector.h"
#include "baselines/random_selector.h"
#include "core/campaign.h"
#include "core/policy.h"
#include "core/trainer.h"
#include "cs/matrix_completion.h"
#include "data/datasets.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace drcell::bench {

/// `--quick` (or DRCELL_QUICK=1) shrinks budgets ~4x for smoke runs.
inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--quick") return true;
  const char* env = std::getenv("DRCELL_QUICK");
  return env != nullptr && std::string(env) == "1";
}

struct ExperimentSlices {
  std::shared_ptr<const mcs::SensingTask> train_task;
  std::shared_ptr<const mcs::SensingTask> test_task;
  Matrix train_warm;  ///< dense block preceding the training slice
  Matrix test_warm;   ///< dense block preceding the testing slice
};

/// Splits a task into warm/train/test blocks:
///   [0, warm)            fully observed preliminary data
///   [warm, warm+train)   training stage cycles
///   [warm+train, end)    testing stage cycles
/// The training environment is warmed by [0, warm); the testing environment
/// by the trailing `warm` cycles of the preliminary+training period (all of
/// which the organiser observed densely during the study).
inline ExperimentSlices make_slices(const mcs::SensingTask& full,
                                    std::size_t warm, std::size_t train) {
  ExperimentSlices s;
  s.train_task = std::make_shared<const mcs::SensingTask>(
      full.slice_cycles(warm, warm + train));
  s.test_task = std::make_shared<const mcs::SensingTask>(
      full.slice_cycles(warm + train, full.num_cycles()));
  s.train_warm = full.slice_cycles(0, warm).ground_truth();
  s.test_warm = full.slice_cycles(train, warm + train).ground_truth();
  return s;
}

/// The hyper-parameters used across the evaluation benches.
inline core::DrCellConfig paper_config(std::size_t num_cells,
                                       std::size_t window,
                                       std::size_t decay_steps) {
  core::DrCellConfig config;
  config.history_cycles = 2;
  config.lstm_hidden = 64;
  config.dqn.gamma = 0.9;
  config.dqn.learning_rate = 1e-3;
  config.dqn.batch_size = 32;
  config.dqn.min_replay = 256;
  config.dqn.replay_capacity = 20000;
  config.dqn.target_sync_interval = 150;
  config.dqn.epsilon = rl::EpsilonSchedule(1.0, 0.05, decay_steps);
  config.env.min_observations = 4;
  config.env.inference_window = window;
  config.env.reward_bonus = static_cast<double>(num_cells);
  config.env.cost = 1.0;
  return config;
}

inline cs::InferenceEnginePtr paper_engine() {
  return std::make_shared<cs::MatrixCompletion>();
}

/// Trains a DR-Cell agent on the training slice (ground-truth gate at
/// `epsilon`, warm-started window), as in the paper's training stage.
inline core::DrCellAgent train_drcell(const ExperimentSlices& slices,
                                      double epsilon,
                                      core::DrCellConfig config,
                                      std::size_t episodes,
                                      double* seconds = nullptr) {
  config.env.warm_start = slices.train_warm;
  core::DrCellAgent agent(slices.train_task->num_cells(), config);
  auto env = core::make_training_environment(slices.train_task,
                                             paper_engine(), epsilon, config);
  const auto result = core::train_agent(agent, env, episodes);
  if (seconds != nullptr) *seconds = result.seconds;
  return agent;
}

/// Runs the testing stage for one selector.
inline core::CampaignResult evaluate(const ExperimentSlices& slices,
                                     baselines::CellSelector& selector,
                                     double epsilon, double p,
                                     const core::DrCellConfig& config) {
  core::CampaignConfig campaign;
  campaign.epsilon = epsilon;
  campaign.p = p;
  campaign.env = config.env;
  campaign.env.history_cycles = config.history_cycles;
  campaign.env.warm_start = slices.test_warm;
  return core::run_campaign(slices.test_task, paper_engine(), selector,
                            campaign);
}

inline std::string pct(double fraction) {
  return format_double(100.0 * fraction, 1) + "%";
}

}  // namespace drcell::bench
