// Micro benchmarks (google-benchmark) for the computation-time report of
// Sec. 5.4: per-component throughput of the pieces a deployment exercises
// on every step — data inference, LOO quality assessment, environment
// steps, DRQN forward passes and gradient steps, dataset generation.
#include <benchmark/benchmark.h>

#include <memory>

#include "cs/matrix_completion.h"
#include "data/datasets.h"
#include "mcs/environment.h"
#include "rl/dqn_trainer.h"
#include "rl/drqn_qnetwork.h"
#include "util/rng.h"

using namespace drcell;

namespace {

/// A 57-cell window shaped like the Sensor-Scope deployment: 48 cycles,
/// the first 24 dense (warm start), the rest ~25% observed.
cs::PartialMatrix make_window() {
  const auto dataset = data::make_sensorscope_like(2018);
  const auto& task = dataset.temperature;
  cs::PartialMatrix window(task.num_cells(), 48);
  Rng rng(3);
  for (std::size_t c = 0; c < 48; ++c)
    for (std::size_t cell = 0; cell < task.num_cells(); ++cell)
      if (c < 24 || rng.bernoulli(0.25))
        window.set(cell, c, task.truth(cell, c));
  return window;
}

void BM_MatrixCompletionInfer(benchmark::State& state) {
  const auto window = make_window();
  const cs::MatrixCompletion engine;
  for (auto _ : state) benchmark::DoNotOptimize(engine.infer(window));
}
BENCHMARK(BM_MatrixCompletionInfer)->Unit(benchmark::kMillisecond);

void BM_LooColumnPredictions(benchmark::State& state) {
  const auto window = make_window();
  const cs::MatrixCompletion engine;
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.loo_column_predictions(window, 47));
}
BENCHMARK(BM_LooColumnPredictions)->Unit(benchmark::kMillisecond);

void BM_KnnInfer(benchmark::State& state) {
  const auto dataset = data::make_sensorscope_like(2018);
  const auto window = make_window();
  const cs::KnnInference engine(dataset.temperature.coords());
  for (auto _ : state) benchmark::DoNotOptimize(engine.infer(window));
}
BENCHMARK(BM_KnnInfer)->Unit(benchmark::kMillisecond);

void BM_EnvironmentStep(benchmark::State& state) {
  const auto dataset = data::make_sensorscope_like(2018);
  auto task = std::make_shared<const mcs::SensingTask>(
      dataset.temperature.slice_cycles(48, 336));
  mcs::EnvOptions options;
  options.inference_window = 48;
  options.min_observations = 4;
  options.warm_start =
      dataset.temperature.slice_cycles(0, 48).ground_truth();
  auto env = mcs::SparseMcsEnvironment(
      task, std::make_shared<cs::MatrixCompletion>(),
      std::make_shared<mcs::LooBayesianGate>(0.3, 0.9), options);
  Rng rng(5);
  for (auto _ : state) {
    if (env.episode_done()) {
      state.PauseTiming();
      env.reset();
      state.ResumeTiming();
    }
    const auto mask = env.action_mask();
    std::vector<std::size_t> allowed;
    for (std::size_t a = 0; a < mask.size(); ++a)
      if (mask[a]) allowed.push_back(a);
    env.step(allowed[rng.uniform_index(allowed.size())]);
  }
}
BENCHMARK(BM_EnvironmentStep)->Unit(benchmark::kMillisecond);

void BM_DrqnForward(benchmark::State& state) {
  Rng rng(1);
  rl::DrqnQNetwork net(57, 2, 64, 0, rng);
  std::vector<Matrix> seq(2, Matrix(1, 57));
  seq[0](0, 3) = 1.0;
  seq[1](0, 11) = 1.0;
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(seq));
}
BENCHMARK(BM_DrqnForward)->Unit(benchmark::kMicrosecond);

void BM_DqnTrainStep(benchmark::State& state) {
  Rng rng(2);
  rl::DqnOptions options;
  options.batch_size = 32;
  options.min_replay = 32;
  rl::DqnTrainer trainer(std::make_unique<rl::DrqnQNetwork>(57, 2, 64, 0, rng),
                         options, 7);
  Rng fill(3);
  for (int i = 0; i < 512; ++i) {
    rl::Experience e;
    e.state.assign(114, 0.0);
    e.state[fill.uniform_index(114)] = 1.0;
    e.action = fill.uniform_index(57);
    e.reward = fill.uniform(-1.0, 56.0);
    e.next_state.assign(114, 0.0);
    e.next_mask.assign(57, 1);
    trainer.observe(std::move(e));
  }
  for (auto _ : state) benchmark::DoNotOptimize(trainer.train_step());
}
BENCHMARK(BM_DqnTrainStep)->Unit(benchmark::kMillisecond);

void BM_QualityGateDecision(benchmark::State& state) {
  const auto dataset = data::make_sensorscope_like(2018);
  const auto& task = dataset.temperature;
  const auto window = make_window();
  const cs::MatrixCompletion engine;
  const mcs::LooBayesianGate gate(0.3, 0.9);
  const Matrix inferred = engine.infer(window);
  const mcs::QualityContext ctx{task, window, 47, 47, &inferred, engine};
  for (auto _ : state) benchmark::DoNotOptimize(gate.probability(ctx));
}
BENCHMARK(BM_QualityGateDecision)->Unit(benchmark::kMillisecond);

void BM_SensorScopeGeneration(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(data::make_sensorscope_like(2018));
}
BENCHMARK(BM_SensorScopeGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
