// Micro benchmarks for the computation-time report of Sec. 5.4: per-component
// throughput of the pieces a deployment exercises on every step — the matmul
// kernel, data inference (cold and warm-started ALS), the pooled committee,
// LOO quality assessment, environment steps, DRQN forward passes and gradient
// steps, dataset generation.
//
// The optimised hot paths are measured against the retained naive reference
// implementations (compiled under DRCELL_ENABLE_REFERENCE_KERNELS), and
// `--json [path]` writes the BENCH_micro.json perf baseline that later PRs
// are compared against.
#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "linalg/sparse_matrix.h"
#include "cs/committee.h"
#include "cs/knn_inference.h"
#include "cs/mean_inference.h"
#include "cs/temporal_inference.h"
#include "mcs/environment.h"
#include "nn/lstm.h"
#include "rl/dqn_trainer.h"
#include "rl/drqn_qnetwork.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace drcell;

// Process-wide allocation counter backing the no-allocation dispatch pin:
// ThreadPool::parallel_for takes callables as non-owning FunctionRefs, so a
// steady-state dispatch must perform ZERO heap allocations (the old
// std::function signature copied the target per call). Only the unaligned
// new/delete pair is overridden — over-aligned allocations keep the library
// defaults, a consistent pairing.
static std::atomic<std::size_t> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

/// A 57-cell window shaped like the Sensor-Scope deployment: 48 cycles,
/// the first 24 dense (warm start), the rest ~25% observed.
cs::PartialMatrix make_window() {
  const auto dataset = data::make_sensorscope_like(2018);
  const auto& task = dataset.temperature;
  cs::PartialMatrix window(task.num_cells(), 48);
  Rng rng(3);
  for (std::size_t c = 0; c < 48; ++c)
    for (std::size_t cell = 0; cell < task.num_cells(); ++cell)
      if (c < 24 || rng.bernoulli(0.25))
        window.set(cell, c, task.truth(cell, c));
  return window;
}

/// Successive sensing-cycle windows: each reveals ~`reveals` more entries of
/// the sparse block, the way a campaign's window evolves between infer calls.
std::vector<cs::PartialMatrix> make_window_sequence(std::size_t steps,
                                                    std::size_t reveals) {
  const auto dataset = data::make_sensorscope_like(2018);
  const auto& task = dataset.temperature;
  std::vector<cs::PartialMatrix> windows;
  cs::PartialMatrix window = make_window();
  Rng rng(71);
  for (std::size_t s = 0; s < steps; ++s) {
    for (std::size_t k = 0; k < reveals; ++k) {
      const std::size_t cell = rng.uniform_index(task.num_cells());
      const std::size_t cycle = 24 + rng.uniform_index(24);
      if (!window.observed(cell, cycle))
        window.set(cell, cycle, task.truth(cell, cycle));
    }
    windows.push_back(window);
  }
  return windows;
}

/// 1000-cell x 48-cycle window at ~10% density — the scale-target shape the
/// sparse observation paths are gated on (values are arbitrary; only the
/// observation pattern matters for these paths).
cs::PartialMatrix make_scale_sparse_window() {
  cs::PartialMatrix window(1000, 48);
  Rng rng(2024);
  for (std::size_t r = 0; r < 1000; ++r)
    for (std::size_t c = 0; c < 48; ++c)
      if (rng.bernoulli(0.10)) window.set(r, c, rng.uniform(-5.0, 35.0));
  return window;
}

/// The observation paths a completion fit runs every sensing step —
/// fingerprint, observed mean, observed RMSE, observation-list iteration and
/// per-row/col counts — measured on the 1000 x 48 scale window against the
/// seed's dense rows x cols scans. All must scale with observed_count, not
/// rows x cols; the combined op carries the >=5x perf gate.
void bench_sparse_observation_paths(bench::JsonReporter& report, bool quick) {
  cs::PartialMatrix window = make_scale_sparse_window();
  Rng rng(9);
  const std::size_t rank = 5;
  const Matrix row_factors = random_normal_matrix(window.rows(), rank, rng);
  const Matrix col_factors = random_normal_matrix(window.cols(), rank, rng);
  const double mu = window.observed_mean();
  const double target = quick ? 120.0 : 350.0;

  double toggle = 1.0;  // alternating write: invalidates the cached
                        // fingerprint so each call pays the full recompute
  double sink = 0.0;    // defeats dead-code elimination

  const auto fast_fingerprint = [&] {
    window.set(0, 0, toggle = -toggle);
    sink += static_cast<double>(window.fingerprint() & 0xff);
  };
  const auto fast_mean = [&] { sink += window.observed_mean(); };
  const auto fast_rmse = [&] {
    sink += cs::observed_rmse(row_factors, col_factors, mu, window);
  };
  const auto fast_lists = [&] {
    // One full pass over every row and column list plus the O(1) counts —
    // what a completion fit's setup now costs.
    std::size_t acc = 0;
    for (std::size_t r = 0; r < window.rows(); ++r) {
      acc += window.observed_count_in_row(r);
      for (std::size_t c : window.observed_cols_in_row(r)) acc += c;
    }
    for (std::size_t c = 0; c < window.cols(); ++c) {
      acc += window.observed_count_in_col(c);
      for (std::size_t r : window.observed_rows_in_col(c)) acc += r;
    }
    sink += static_cast<double>(acc & 0xff);
  };
  const auto fast_all = [&] {
    fast_fingerprint();
    fast_mean();
    fast_rmse();
    fast_lists();
  };

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  // Seed behaviour: every path scans the dense rows x cols grid.
  const auto dense_fingerprint = [&] {
    window.set(0, 0, toggle = -toggle);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
      h ^= h >> 29;
    };
    mix(window.rows());
    mix(window.cols());
    mix(window.observed_count());
    for (std::size_t r = 0; r < window.rows(); ++r)
      for (std::size_t c = 0; c < window.cols(); ++c)
        if (window.observed(r, c)) {
          mix(r * window.cols() + c);
          mix(std::bit_cast<std::uint64_t>(window.value(r, c)));
        }
    sink += static_cast<double>(h & 0xff);
  };
  const auto dense_mean = [&] {
    double s = 0.0;
    std::size_t count = 0;
    for (std::size_t r = 0; r < window.rows(); ++r)
      for (std::size_t c = 0; c < window.cols(); ++c)
        if (window.observed(r, c)) {
          s += window.value(r, c);
          ++count;
        }
    sink += count ? s / static_cast<double>(count) : 0.0;
  };
  const auto dense_rmse = [&] {
    double sq = 0.0;
    std::size_t count = 0;
    for (std::size_t r = 0; r < window.rows(); ++r)
      for (std::size_t c = 0; c < window.cols(); ++c) {
        if (!window.observed(r, c)) continue;
        double pred = mu;
        for (std::size_t k = 0; k < rank; ++k)
          pred += row_factors(r, k) * col_factors(c, k);
        const double d = pred - window.value(r, c);
        sq += d * d;
        ++count;
      }
    sink += count ? std::sqrt(sq / static_cast<double>(count)) : 0.0;
  };
  const auto dense_lists = [&] {
    // Seed observed_cols_in_row/observed_rows_in_col: a fresh vector per
    // query, each filled by scanning the full dense extent.
    std::size_t acc = 0;
    for (std::size_t r = 0; r < window.rows(); ++r) {
      std::vector<std::size_t> cols;
      for (std::size_t c = 0; c < window.cols(); ++c)
        if (window.observed(r, c)) cols.push_back(c);
      acc += cols.size();
      for (std::size_t c : cols) acc += c;
    }
    for (std::size_t c = 0; c < window.cols(); ++c) {
      std::vector<std::size_t> rows;
      for (std::size_t r = 0; r < window.rows(); ++r)
        if (window.observed(r, c)) rows.push_back(r);
      acc += rows.size();
      for (std::size_t r : rows) acc += r;
    }
    sink += static_cast<double>(acc & 0xff);
  };
  const auto dense_all = [&] {
    dense_fingerprint();
    dense_mean();
    dense_rmse();
    dense_lists();
  };

  const auto add_pair = [&](const std::string& op, auto&& fast,
                            auto&& dense) {
    const auto f = bench::measure_ms(fast, target, 20000);
    const auto d = bench::measure_ms(dense, target, 20000);
    report.add_with_reference(op, f.wall_ms, f.iterations, 1e3 / f.wall_ms,
                              d.wall_ms, d.iterations);
    std::cout << op << ": sparse " << format_double(f.wall_ms * 1e3, 1)
              << " us, dense-scan " << format_double(d.wall_ms * 1e3, 1)
              << " us, speedup " << format_double(d.wall_ms / f.wall_ms, 2)
              << "x\n";
  };
  add_pair("sparse_window_fingerprint_1000x48", fast_fingerprint,
           dense_fingerprint);
  add_pair("sparse_observed_mean_1000x48", fast_mean, dense_mean);
  add_pair("sparse_observed_rmse_1000x48", fast_rmse, dense_rmse);
  add_pair("sparse_observation_lists_1000x48", fast_lists, dense_lists);
  add_pair("sparse_observation_paths_1000x48", fast_all, dense_all);
#else
  const auto f = bench::measure_ms(fast_all, target, 20000);
  report.add("sparse_observation_paths_1000x48", f.wall_ms, f.iterations,
             1e3 / f.wall_ms);
#endif
  if (sink == 42.123456789) std::cout << "";  // keep `sink` observable
}

void bench_matmul(bench::JsonReporter& report, bool quick) {
  // Same 320^3 problem in both modes (the blocked-vs-naive ratio depends on
  // the working set exceeding cache); quick only trims the timing budget.
  const std::size_t n = 320;
  Rng rng(11);
  const Matrix a = random_normal_matrix(n, n, rng);
  const Matrix b = random_normal_matrix(n, n, rng);
  Matrix out;
  const auto fast = bench::measure_ms(
      [&] { a.matmul_into(b, out); }, quick ? 120.0 : 400.0);
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  const auto naive = bench::measure_ms([&] { (void)a.matmul_naive(b); },
                                       quick ? 120.0 : 400.0, 50);
  report.add_with_reference("matmul_" + std::to_string(n), fast.wall_ms,
                            fast.iterations, 1e3 / fast.wall_ms,
                            naive.wall_ms, naive.iterations);
  // The seed's actual kernel (unblocked ikj), for honest context on what
  // the blocked kernel gained over the previously shipped code — the gated
  // speedup above is against the textbook-naive floor.
  const auto unblocked = bench::measure_ms(
      [&] { (void)a.matmul_unblocked(b); }, quick ? 120.0 : 400.0, 50);
  report.add("matmul_" + std::to_string(n) + "_unblocked_seed",
             unblocked.wall_ms, unblocked.iterations,
             1e3 / unblocked.wall_ms);
  std::cout << "matmul " << n << "^3: blocked "
            << format_double(fast.wall_ms, 3) << " ms, unblocked(seed) "
            << format_double(unblocked.wall_ms, 3) << " ms, naive "
            << format_double(naive.wall_ms, 3) << " ms, speedup vs naive "
            << format_double(naive.wall_ms / fast.wall_ms, 2) << "x\n";
#else
  report.add("matmul_" + std::to_string(n), fast.wall_ms, fast.iterations,
             1e3 / fast.wall_ms);
#endif

  // The DRQN head shape (batch x features times features x cells) for
  // context on the sizes the trainer actually runs.
  const Matrix nn_a = random_normal_matrix(32, 114, rng);
  const Matrix nn_b = random_normal_matrix(114, 256, rng);
  Matrix nn_out;
  const auto nn = bench::measure_ms(
      [&] { nn_a.matmul_into(nn_b, nn_out); }, 100.0, 20000);
  report.add("matmul_drqn_head", nn.wall_ms, nn.iterations,
             1e3 / nn.wall_ms);
}

void bench_sparse_gather(bench::JsonReporter& report, bool quick) {
  // The metro-tier LSTM input GEMM shape: a [32 x 10000] selection-union
  // step matrix (~300 ones per row, the per-cycle selection cap) times the
  // [10000 x 256] input weight block. The gather touches the stored entries
  // only; the dense kernel walks all 320k per-row elements. The two are
  // bit-identical by contract (linalg/sparse_matrix.h) — asserted here on
  // the real shape before timing — and the pair carries a hard >=5x
  // self-gate plus the CI committed-baseline gate.
  const std::size_t batch = 32, cells = 10000, width = 256, ones = 300;
  Rng rng(13);
  Matrix dense(batch, cells);
  SparseRowMatrix sparse(batch, cells);
  std::vector<std::uint32_t> row_ones;
  for (std::size_t b = 0; b < batch; ++b) {
    row_ones.clear();
    for (std::size_t i = 0; i < ones; ++i)
      row_ones.push_back(static_cast<std::uint32_t>(rng.uniform_index(cells)));
    std::sort(row_ones.begin(), row_ones.end());
    row_ones.erase(std::unique(row_ones.begin(), row_ones.end()),
                   row_ones.end());
    for (const std::uint32_t c : row_ones) {
      dense(b, c) = 1.0;
      sparse.append(b, c, 1.0);
    }
  }
  const Matrix w = random_normal_matrix(cells, width, rng);

  Matrix out_sparse, out_dense;
  sparse.matmul_into(w, out_sparse);
  dense.matmul_into(w, out_dense);
  // Bit-identity under exact-contract backends; tolerance backends run the
  // exact gather against their own dense GEMM, so the relaxed bound applies.
  const bool gather_ok =
      BackendRegistry::active().exact_contract()
          ? out_sparse == out_dense
          : (out_sparse - out_dense).max_abs() <=
                BackendRegistry::active().tolerance_vs_native();
  if (!gather_ok) {
    std::cerr << "FAIL: sparse gather GEMM diverged from the dense kernel "
                 "(bit-identity contract broken)\n";
    std::exit(1);
  }

  const double target = quick ? 120.0 : 400.0;
  const auto gather = bench::measure_ms(
      [&] { sparse.matmul_into(w, out_sparse); }, target, 20000);
  const auto full = bench::measure_ms(
      [&] { dense.matmul_into(w, out_dense); }, target, 2000);
  report.add_with_reference("sparse_gather_gemm_32x10000", gather.wall_ms,
                            gather.iterations, 1e3 / gather.wall_ms,
                            full.wall_ms, full.iterations);
  std::cout << "sparse gather GEMM [32x10000]x[10000x256]: gather "
            << format_double(gather.wall_ms, 3) << " ms, dense "
            << format_double(full.wall_ms, 3) << " ms, speedup "
            << format_double(full.wall_ms / gather.wall_ms, 2) << "x\n";
}

void bench_als(bench::JsonReporter& report, bool quick) {
  // ~14 reveals = one sensing cycle's worth of new observations at the
  // paper's 25% density on 57 cells.
  const auto windows = make_window_sequence(quick ? 4 : 8, 14);
  const double cycles = static_cast<double>(windows.size());

  // The reference is the seed behaviour: cold start from random noise every
  // call, no Frobenius early exit (only the original max-change stop).
  cs::MatrixCompletionOptions cold_opts;
  cold_opts.warm_start = false;
  cold_opts.frobenius_tol = 0.0;
  const cs::MatrixCompletion cold(cold_opts);
  const cs::MatrixCompletion warm;  // warm-start on by default

  // One f() = one pass over the window sequence = `cycles` sensing cycles.
  const auto warm_run = bench::measure_ms(
      [&] {
        for (const auto& w : windows) (void)warm.infer(w);
      },
      quick ? 200.0 : 600.0, 50);
  const auto cold_run = bench::measure_ms(
      [&] {
        for (const auto& w : windows) (void)cold.infer(w);
      },
      quick ? 200.0 : 600.0, 50);

  const double warm_ms = warm_run.wall_ms / cycles;   // per sensing cycle
  const double cold_ms = cold_run.wall_ms / cycles;
  report.add_with_reference("als_completion_cycle", warm_ms,
                            warm_run.iterations * cycles, 1e3 / warm_ms,
                            cold_ms, cold_run.iterations * cycles);
  std::cout << "ALS completion per cycle: warm "
            << format_double(warm_ms, 3) << " ms, cold "
            << format_double(cold_ms, 3) << " ms, speedup "
            << format_double(cold_ms / warm_ms, 2) << "x\n";
}

void bench_committee(bench::JsonReporter& report, bool quick) {
  const auto dataset = data::make_sensorscope_like(2018);
  const auto window = make_window();
  cs::MatrixCompletionOptions mc_opts;
  mc_opts.warm_start = false;  // identical work in both modes
  const auto make_members = [&] {
    std::vector<cs::InferenceEnginePtr> members;
    members.push_back(std::make_shared<cs::MeanInference>());
    members.push_back(std::make_shared<cs::TemporalInterpolation>());
    members.push_back(
        std::make_shared<cs::KnnInference>(dataset.temperature.coords()));
    members.push_back(std::make_shared<cs::MatrixCompletion>(mc_opts));
    return members;
  };

  cs::InferenceCommittee serial(make_members());
  util::ThreadPool serial_pool(0);
  serial.set_thread_pool(&serial_pool);
  cs::InferenceCommittee pooled(make_members());
  util::ThreadPool pool;  // hardware-sized
  pooled.set_thread_pool(&pool);

  const double target = quick ? 150.0 : 400.0;
  const auto pooled_run =
      bench::measure_ms([&] { (void)pooled.infer_all(window); }, target, 100);
  const auto serial_run =
      bench::measure_ms([&] { (void)serial.infer_all(window); }, target, 100);
  report.add_with_reference("committee_infer_all", pooled_run.wall_ms,
                            pooled_run.iterations, 1e3 / pooled_run.wall_ms,
                            serial_run.wall_ms, serial_run.iterations);
  std::cout << "committee infer_all: pooled("
            << pool.worker_count() + 1 << " lanes) "
            << format_double(pooled_run.wall_ms, 3) << " ms, serial "
            << format_double(serial_run.wall_ms, 3) << " ms\n";
}

void bench_inference_details(bench::JsonReporter& report, bool quick) {
  const auto dataset = data::make_sensorscope_like(2018);
  const auto& task = dataset.temperature;
  const auto window = make_window();
  const cs::MatrixCompletion engine;
  const double target = quick ? 100.0 : 300.0;

  const auto loo = bench::measure_ms(
      [&] { (void)engine.loo_column_predictions(window, 47); }, target, 200);
  report.add("loo_column_predictions", loo.wall_ms, loo.iterations,
             1e3 / loo.wall_ms);

  const cs::KnnInference knn(task.coords());
  const auto knn_run =
      bench::measure_ms([&] { (void)knn.infer(window); }, target, 200);
  report.add("knn_infer", knn_run.wall_ms, knn_run.iterations,
             1e3 / knn_run.wall_ms);

  const mcs::LooBayesianGate gate(0.3, 0.9);
  const Matrix inferred = engine.infer(window);
  const mcs::QualityContext ctx{task, window, 47, 47, &inferred, engine};
  const auto gate_run =
      bench::measure_ms([&] { (void)gate.probability(ctx); }, target, 500);
  report.add("quality_gate_decision", gate_run.wall_ms, gate_run.iterations,
             1e3 / gate_run.wall_ms);
}

void bench_environment(bench::JsonReporter& report, bool quick) {
  const auto dataset = data::make_sensorscope_like(2018);
  auto task = std::make_shared<const mcs::SensingTask>(
      dataset.temperature.slice_cycles(48, 336));
  mcs::EnvOptions options;
  options.inference_window = 48;
  options.min_observations = 4;
  options.warm_start = dataset.temperature.slice_cycles(0, 48).ground_truth();
  auto env = mcs::SparseMcsEnvironment(
      task, std::make_shared<cs::MatrixCompletion>(),
      std::make_shared<mcs::LooBayesianGate>(0.3, 0.9), options);
  Rng rng(5);
  // Reset once up front and cap iterations below the episode length so no
  // env.reset() (window re-inference, state rebuild) lands inside the timed
  // region — this measures the per-step cost only, like the old harness's
  // PauseTiming around resets did.
  env.reset();
  const auto step = bench::measure_ms(
      [&] {
        if (env.episode_done()) return;  // episode-length cap safety net
        const auto& mask = env.action_mask();
        std::vector<std::size_t> allowed;
        for (std::size_t a = 0; a < mask.size(); ++a)
          if (mask[a]) allowed.push_back(a);
        env.step(allowed[rng.uniform_index(allowed.size())]);
      },
      quick ? 150.0 : 400.0, 200);
  report.add("environment_step", step.wall_ms, step.iterations,
             1e3 / step.wall_ms);
}

/// The fused fastmath LSTM gate pass at the paper-scale step shape (batch
/// 32, 64 hidden units → one [32 x 256] pre-activation block) against the
/// retained std::-based scalar gate pass. The forward pair carries the hard
/// >=3x self-gate (the four transcendental gate activations are exactly
/// what fastmath vectorises); the mirrored backward — pure elementwise
/// arithmetic on both sides — is reported as ungated context.
void bench_lstm_gate(bench::JsonReporter& report, bool quick) {
  const std::size_t batch = 32, hidden = 64;
  Rng rng(21);
  Matrix z = random_normal_matrix(batch, 4 * hidden, rng);
  for (double& v : z.data()) v *= 2.0;  // spread across the nonlinear range
  const Matrix c_prev = random_normal_matrix(batch, hidden, rng);
  Matrix gates(batch, 4 * hidden), c(batch, hidden), tanh_c(batch, hidden),
      h(batch, hidden);

  const double target = quick ? 100.0 : 300.0;
  const auto fwd = bench::measure_ms(
      [&] { nn::lstm_gate_forward(z, &c_prev, gates, c, tanh_c, h); }, target,
      200000);

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  // Numeric-divergence self-check before timing: the fused pass must track
  // the std:: reference within the fastmath tolerance on every tensor.
  {
    Matrix rg(batch, 4 * hidden), rc(batch, hidden), rt(batch, hidden),
        rh(batch, hidden);
    nn::lstm_gate_forward(z, &c_prev, gates, c, tanh_c, h);
    nn::lstm_gate_forward_reference(z, &c_prev, rg, rc, rt, rh);
    if ((gates - rg).max_abs() > 1e-11 || (c - rc).max_abs() > 1e-11 ||
        (tanh_c - rt).max_abs() > 1e-11 || (h - rh).max_abs() > 1e-11) {
      std::cerr << "FAIL: fused LSTM gate pass diverged from the std:: "
                   "reference beyond the fastmath tolerance\n";
      std::exit(1);
    }
  }
  const auto fwd_ref = bench::measure_ms(
      [&] {
        nn::lstm_gate_forward_reference(z, &c_prev, gates, c, tanh_c, h);
      },
      target, 200000);
  report.add_with_reference("lstm_gate_pass", fwd.wall_ms, fwd.iterations,
                            1e3 / fwd.wall_ms, fwd_ref.wall_ms,
                            fwd_ref.iterations);
  std::cout << "lstm gate pass (32x256): fused "
            << format_double(fwd.wall_ms * 1e3, 1) << " us, std "
            << format_double(fwd_ref.wall_ms * 1e3, 1) << " us, speedup "
            << format_double(fwd_ref.wall_ms / fwd.wall_ms, 2) << "x\n";

  // Mirrored backward pass over the cached forward tensors.
  nn::lstm_gate_forward(z, &c_prev, gates, c, tanh_c, h);
  Rng grad_rng(22);
  const Matrix dh = random_normal_matrix(batch, hidden, grad_rng);
  const Matrix dc_next = random_normal_matrix(batch, hidden, grad_rng);
  Matrix dz(batch, 4 * hidden), dc_prev(batch, hidden);
  const auto bwd = bench::measure_ms(
      [&] {
        nn::lstm_gate_backward(gates, tanh_c, &c_prev, dh, dc_next, dz,
                               dc_prev);
      },
      target, 200000);
  const auto bwd_ref = bench::measure_ms(
      [&] {
        nn::lstm_gate_backward_reference(gates, tanh_c, &c_prev, dh, dc_next,
                                         dz, dc_prev);
      },
      target, 200000);
  report.add_with_reference("lstm_gate_backward_pass", bwd.wall_ms,
                            bwd.iterations, 1e3 / bwd.wall_ms,
                            bwd_ref.wall_ms, bwd_ref.iterations);
#else
  report.add("lstm_gate_pass", fwd.wall_ms, fwd.iterations,
             1e3 / fwd.wall_ms);
#endif
}

/// Paper-scale DRQN trainer (57 cells, k = 2, 64 LSTM units, batch 32 —
/// the Sensor-Scope configuration of Sec. 5.3) over a 512-transition pool.
/// `reference_gates` routes the batched engine's gate nonlinearities
/// through the retained std:: kernels (the train_step_fastmath floor).
rl::DqnTrainer make_paper_scale_trainer(std::uint64_t net_seed,
                                        bool reference_gates = false) {
  Rng net_rng(net_seed);
  rl::DqnOptions options;
  options.batch_size = 32;
  options.min_replay = 32;
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  options.reference_gate_kernel = reference_gates;
#else
  (void)reference_gates;
#endif
  rl::DqnTrainer trainer(
      std::make_unique<rl::DrqnQNetwork>(57, 2, 64, 0, net_rng), options, 7);
  Rng fill(3);
  for (int i = 0; i < 512; ++i) {
    rl::Experience e;
    e.state.assign(114, 0.0);
    e.state[fill.uniform_index(114)] = 1.0;
    e.action = fill.uniform_index(57);
    e.reward = fill.uniform(-1.0, 56.0);
    e.next_state.assign(114, 0.0);
    e.next_mask.assign(57, 1);
    trainer.observe(std::move(e));
  }
  return trainer;
}

void bench_rl(bench::JsonReporter& report, bool quick) {
  Rng rng(1);
  rl::DrqnQNetwork net(57, 2, 64, 0, rng);
  std::vector<Matrix> seq(2, Matrix(1, 57));
  seq[0](0, 3) = 1.0;
  seq[1](0, 11) = 1.0;
  const auto fwd = bench::measure_ms([&] { (void)net.forward(seq); },
                                     quick ? 100.0 : 250.0, 50000);
  report.add("drqn_forward", fwd.wall_ms, fwd.iterations, 1e3 / fwd.wall_ms);

  // The batched forward at the trainer's minibatch width, for context on
  // how the per-sample cost amortises (reported per 32-sample batch).
  std::vector<Matrix> batch_seq(2, Matrix(32, 57));
  Rng batch_rng(4);
  for (auto& step : batch_seq)
    for (std::size_t b = 0; b < 32; ++b)
      step(b, batch_rng.uniform_index(57)) = 1.0;
  const auto fwd_batch = bench::measure_ms(
      [&] { (void)net.forward_batch(batch_seq); }, quick ? 100.0 : 250.0,
      20000);
  report.add("drqn_forward_batch32", fwd_batch.wall_ms, fwd_batch.iterations,
             1e3 / fwd_batch.wall_ms);

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  // Parameter self-checks before timing anything, so a perf run can never
  // report a speedup for a path that silently diverged. Two contracts:
  //  - batched engine with the std:: gate kernel vs the per-sample
  //    reference path: bit-identical (the PR-4 engine contract);
  //  - production batched engine (fused fastmath gates) vs the per-sample
  //    reference: equal within the documented fastmath end-to-end
  //    tolerance (1e-8 max-abs after 5 shared minibatch updates —
  //    docs/ARCHITECTURE.md, tests/batched_training_test.cpp).
  {
    rl::DqnTrainer fastmath_batched = make_paper_scale_trainer(2);
    rl::DqnTrainer std_batched = make_paper_scale_trainer(2, true);
    rl::DqnTrainer reference = make_paper_scale_trainer(2);
    Rng draw(11);
    for (int step = 0; step < 5; ++step) {
      std::vector<std::size_t> indices;
      for (int i = 0; i < 32; ++i) indices.push_back(draw.uniform_index(512));
      (void)fastmath_batched.train_step_on_indices(indices);
      (void)std_batched.train_step_on_indices(indices);
      (void)reference.train_step_reference_on_indices(indices);
    }
    const auto pf = fastmath_batched.online().parameters();
    const auto ps = std_batched.online().parameters();
    const auto pr = reference.online().parameters();
    // Bit-identity between the std::-gate batched engine and the per-sample
    // reference holds only under exact-contract backends; tolerance
    // backends (e.g. blas) are held to the documented 1e-8 bound instead.
    const bool exact = BackendRegistry::active().exact_contract();
    for (std::size_t i = 0; i < pf.size(); ++i) {
      const bool std_ok =
          exact ? ps[i]->value == pr[i]->value
                : (ps[i]->value - pr[i]->value).max_abs() <= 1e-8;
      if (!std_ok) {
        std::cerr << "FAIL: batched train step (std:: gate kernel) diverged "
                     "from the per-sample reference path (parameter "
                  << i << ")\n";
        std::exit(1);
      }
      if ((pf[i]->value - pr[i]->value).max_abs() > 1e-8) {
        std::cerr << "FAIL: fastmath batched train step drifted beyond the "
                     "documented tolerance vs the reference path (parameter "
                  << i << ")\n";
        std::exit(1);
      }
    }
  }

#endif

  // The headline measurement: one batched minibatch update at the
  // paper-scale DRQN config. The batched engine turns 3x32 skinny B=1
  // forwards plus 32 backwards into three [32 x F] GEMM passes and one
  // batched backward — the shape the blocked kernel and the AᵀB/ABᵀ
  // primitives are built for.
  rl::DqnTrainer trainer = make_paper_scale_trainer(2);
  const auto train = bench::measure_ms([&] { (void)trainer.train_step(); },
                                       quick ? 150.0 : 400.0, 5000);
  report.add("dqn_train_step", train.wall_ms, train.iterations,
             1e3 / train.wall_ms);

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  // Paired against the retained per-sample reference update. Hard >=3x
  // self-gate below; also gated in CI against the committed baseline ratio.
  rl::DqnTrainer ref_trainer = make_paper_scale_trainer(2);
  const auto train_ref = bench::measure_ms(
      [&] { (void)ref_trainer.train_step_reference(); },
      quick ? 150.0 : 400.0, 5000);
  report.add_with_reference("train_step_batched", train.wall_ms,
                            train.iterations, 1e3 / train.wall_ms,
                            train_ref.wall_ms, train_ref.iterations);
  std::cout << "dqn train step (paper-scale DRQN): batched "
            << format_double(train.wall_ms, 3) << " ms, per-sample reference "
            << format_double(train_ref.wall_ms, 3) << " ms, speedup "
            << format_double(train_ref.wall_ms / train.wall_ms, 2) << "x\n";

  // train_step_fastmath isolates the fastmath contribution: the identical
  // batched engine with the std:: gate kernel is the floor, so the ratio
  // reads what the fused gate pass buys end to end (the GEMMs and batch
  // assembly are shared). The self-check above already verified the
  // fastmath path's parameters against the reference within tolerance.
  rl::DqnTrainer std_gate_trainer = make_paper_scale_trainer(2, true);
  const auto train_std = bench::measure_ms(
      [&] { (void)std_gate_trainer.train_step(); }, quick ? 150.0 : 400.0,
      5000);
  report.add_with_reference("train_step_fastmath", train.wall_ms,
                            train.iterations, 1e3 / train.wall_ms,
                            train_std.wall_ms, train_std.iterations);
  std::cout << "dqn train step (paper-scale DRQN): fastmath gates "
            << format_double(train.wall_ms, 3) << " ms, std:: gates "
            << format_double(train_std.wall_ms, 3) << " ms, speedup "
            << format_double(train_std.wall_ms / train.wall_ms, 2) << "x\n";
#endif
}

/// Faithful copy of the pre-chunked ThreadPool dispatch: one index claimed
/// per acquisition of the batch mutex, callables passed as std::function
/// (copied per call site). The baseline half of the
/// `pool_dispatch_fine_grain` pair — the ratio reads what chunked atomic
/// claiming plus FunctionRef buy on ~1µs tasks.
class MutexClaimPool {
 public:
  explicit MutexClaimPool(std::size_t workers) {
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }
  ~MutexClaimPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_ready_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (workers_.empty()) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    Batch batch;
    batch.fn = &fn;
    batch.n = n;
    std::unique_lock<std::mutex> lock(mutex_);
    batch_ = &batch;
    work_ready_.notify_all();
    drain_batch(batch, lock);
    batch_done_.wait(lock, [&batch] { return batch.completed == batch.n; });
    batch_ = nullptr;
  }

 private:
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t next = 0;
    std::size_t completed = 0;
  };
  void worker_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      work_ready_.wait(lock, [this] {
        return stop_ || (batch_ != nullptr && batch_->next < batch_->n);
      });
      if (stop_) return;
      drain_batch(*batch_, lock);
    }
  }
  void drain_batch(Batch& batch, std::unique_lock<std::mutex>& lock) {
    while (batch.next < batch.n) {
      const std::size_t i = batch.next++;
      lock.unlock();
      (*batch.fn)(i);
      lock.lock();
      if (++batch.completed == batch.n) batch_done_.notify_all();
    }
  }
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  Batch* batch_ = nullptr;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Dispatch overhead on fine-grain tasks: 4096 tasks of ~1µs each, the
/// granularity of the ALS chunk loop and the per-row Nyström fan-outs. The
/// pair measures the shipping chunked-atomic dispatch against the retained
/// mutex-per-index claim at the same worker count, self-checks that both
/// produce the identical output, and pins the FunctionRef path to zero heap
/// allocations per steady-state parallel_for.
void bench_pool_dispatch(bench::JsonReporter& report, bool quick) {
  const std::size_t workers = util::ThreadPool::default_worker_count();
  const std::size_t n = quick ? 1024 : 4096;
  const double target = quick ? 100.0 : 300.0;
  std::vector<double> out(n, 0.0);
  // ~1µs of dependent floating-point work per task: long enough to be a
  // real task, short enough that dispatch overhead dominates a mutex-held
  // claim path.
  const auto task = [&out](std::size_t i) {
    double acc = static_cast<double>(i) * 1e-3 + 1.0;
    for (int k = 0; k < 500; ++k) acc = acc * 1.0000001 + 1e-9;
    out[i] = acc;
  };

  util::ThreadPool pool(workers);
  pool.parallel_for(n, task);
  const std::vector<double> expected = out;

  // No-allocation pin: eight steady-state dispatches must not touch the
  // heap (FunctionRef carries the callable by reference; the chunked drain
  // claims ranges off one atomic).
  const std::size_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (int rep = 0; rep < 8; ++rep) pool.parallel_for(n, task);
  const std::size_t alloc_delta =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  if (alloc_delta != 0) {
    std::cerr << "FAIL: parallel_for allocated (" << alloc_delta
              << " allocations across 8 dispatches) — the FunctionRef "
                 "dispatch path must be allocation-free\n";
    std::exit(1);
  }

  const auto fast =
      bench::measure_ms([&] { pool.parallel_for(n, task); }, target, 2000);

  MutexClaimPool mutex_pool(workers);
  std::fill(out.begin(), out.end(), 0.0);
  mutex_pool.parallel_for(n, task);
  if (out != expected) {
    std::cerr << "FAIL: mutex-claim reference dispatch diverged from the "
                 "chunked atomic dispatch\n";
    std::exit(1);
  }
  const auto ref = bench::measure_ms(
      [&] { mutex_pool.parallel_for(n, task); }, target, 2000);

  report.add_with_reference("pool_dispatch_fine_grain", fast.wall_ms,
                            fast.iterations, 1e3 / fast.wall_ms, ref.wall_ms,
                            ref.iterations);
  std::cout << "pool dispatch (" << n << " x ~1us tasks, " << workers
            << " workers): chunked atomic "
            << format_double(fast.wall_ms, 3) << " ms, mutex claim "
            << format_double(ref.wall_ms, 3) << " ms, speedup "
            << format_double(ref.wall_ms / fast.wall_ms, 2) << "x\n";
  if (workers < 3)
    std::cout << "pool_dispatch_fine_grain: reported UNGATED at " << workers
              << " workers — without concurrent lanes the mutex claim never "
                 "contends, so the two strategies are indistinguishable; the "
                 ">=2x gate arms at >= 3 workers (4 lanes)\n";
}

void bench_datasets(bench::JsonReporter& report, bool quick) {
  const auto gen = bench::measure_ms(
      [&] { (void)data::make_sensorscope_like(2018); }, quick ? 150.0 : 400.0,
      50);
  report.add("sensorscope_generation", gen.wall_ms, gen.iterations,
             1e3 / gen.wall_ms);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::string backend = bench::select_backend(argc, argv);
  bool no_gate = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--no-perf-gate") no_gate = true;
#ifndef NDEBUG
  // Unoptimised builds measure untuned code; the 3x thresholds only mean
  // something with optimisation on.
  no_gate = true;
#endif
  if (backend != "native") {
    // The hard speedup gates compare the active kernels against the naive
    // references — only meaningful for the tuned native backend (under
    // --backend reference the "optimised" ops ARE the references).
    no_gate = true;
    std::cout << "backend " << backend << ": perf gates disabled\n";
  }
  const std::string json = bench::json_path(argc, argv, "BENCH_micro.json");
  bench::JsonReporter report("micro_components", quick);
  report.set_backend(backend);
  report.set_hardware_concurrency(std::thread::hardware_concurrency());
  Stopwatch total;

  bench_pool_dispatch(report, quick);
  bench_matmul(report, quick);
  bench_sparse_gather(report, quick);
  bench_lstm_gate(report, quick);
  bench_sparse_observation_paths(report, quick);
  bench_als(report, quick);
  bench_committee(report, quick);
  bench_inference_details(report, quick);
  bench_environment(report, quick);
  bench_rl(report, quick);
  bench_datasets(report, quick);

  std::cout << "total bench time: "
            << format_double(total.elapsed_seconds(), 1) << " s\n";
  // Write the report before gating so the artifact exists for debugging a
  // perf regression.
  const int exit_code = bench::finish_report(report, json, total);

#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  // The perf gates: the optimised matmul, the warm-started ALS, the batched
  // train step and the fused LSTM gate pass must stay >= 3x ahead of their
  // retained references, and the sparse observation paths >= 5x ahead of
  // the dense-scan seed path on the 1000 x 48 scale window.
  // --no-perf-gate skips them for runs on contended machines (the CTest
  // registration uses it; the dedicated CI bench step keeps them hard).
  const double matmul_speedup = report.speedup("matmul_320");
  const double als_speedup = report.speedup("als_completion_cycle");
  const double sparse_speedup =
      report.speedup("sparse_observation_paths_1000x48");
  const double train_speedup = report.speedup("train_step_batched");
  const double gate_speedup = report.speedup("lstm_gate_pass");
  const double gather_speedup = report.speedup("sparse_gather_gemm_32x10000");
  if (!no_gate && (matmul_speedup < 3.0 || als_speedup < 3.0 ||
                   sparse_speedup < 5.0 || train_speedup < 3.0 ||
                   gate_speedup < 3.0 || gather_speedup < 5.0)) {
    std::cerr << "PERF REGRESSION: matmul speedup "
              << format_double(matmul_speedup, 2) << "x, ALS speedup "
              << format_double(als_speedup, 2) << "x, batched train step "
              << format_double(train_speedup, 2) << "x, LSTM gate pass "
              << format_double(gate_speedup, 2)
              << "x (all must be >= 3x); sparse observation paths "
              << format_double(sparse_speedup, 2) << "x and sparse gather "
                 "GEMM "
              << format_double(gather_speedup, 2) << "x (must be >= 5x)\n";
    return 1;
  }
#endif

  // Dispatch-overhead gate: chunked atomic claiming must hold >= 2x over
  // the mutex-per-index claim on ~1µs tasks. Only armed with enough workers
  // for the mutex path to actually contend (>= 3 workers / 4 lanes); below
  // that bench_pool_dispatch prints the documented UNGATED line instead —
  // on 1-core hardware both strategies run the same serial loop. Gated
  // independently of the reference-kernel build: the pair needs no retained
  // kernels, only the pool itself.
  const double dispatch_speedup = report.speedup("pool_dispatch_fine_grain");
  if (!no_gate && util::ThreadPool::default_worker_count() >= 3 &&
      dispatch_speedup < 2.0) {
    std::cerr << "PERF REGRESSION: pool dispatch speedup "
              << format_double(dispatch_speedup, 2)
              << "x vs the mutex-claim reference (must be >= 2x at >= 3 "
                 "workers)\n";
    return 1;
  }
  return exit_code;
}
