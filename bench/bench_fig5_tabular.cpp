// Companion to Fig. 5 / Sec. 4.2: tabular Q-learning on a small cell-count
// task, showing that the Q-table converges to a selection policy that
// completes cycles with fewer sensed cells than random selection — and
// why the tabular approach cannot scale (state-space size is printed).
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "data/synthetic_field.h"
#include "rl/tabular.h"

using namespace drcell;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::string json = bench::json_path(argc, argv, "BENCH_fig5.json");
  bench::JsonReporter report("fig5_tabular", quick);
  Stopwatch total;
  // A 5-cell task, as in the paper's worked example (Sec. 4.2).
  const auto coords = data::grid_coords(1, 5, 50.0, 30.0);
  data::SyntheticFieldGenerator gen(coords);
  data::FieldParams params;
  params.mean = 6.04;
  params.stddev = 1.87;
  params.spatial_length = 120.0;
  params.temporal_ar1 = 0.95;
  params.cycles_per_day = 24.0;
  params.num_modes = 2;
  Rng rng(5);
  auto task = std::make_shared<const mcs::SensingTask>(
      "five-cells", gen.generate(params, 96, rng), coords,
      mcs::ErrorMetric::mae(), 1.0);

  const double epsilon = 0.6;
  mcs::EnvOptions env_options;
  env_options.history_cycles = 2;
  env_options.inference_window = 12;
  env_options.min_observations = 1;
  auto gate = std::make_shared<mcs::GroundTruthGate>(epsilon);
  auto engine = bench::paper_engine();

  // Q-learning, Algorithm 1: gamma 0.9, alpha 0.5, decaying delta.
  rl::TabularQLearning qtable(task->num_cells(), {.alpha = 0.5, .gamma = 0.9});
  const std::size_t episodes = quick ? 10 : 60;
  rl::EpsilonSchedule delta(1.0, 0.02, episodes * 96 * 2);
  Rng explore_rng(17);

  mcs::SparseMcsEnvironment env(task, engine, gate, env_options);
  std::size_t step_count = 0;
  std::vector<double> episode_cells;
  Stopwatch train_watch;
  for (std::size_t ep = 0; ep < episodes; ++ep) {
    env.reset();
    while (!env.episode_done()) {
      const auto state = env.state();
      const auto& mask = env.action_mask();
      const auto action = qtable.select_action(
          state, mask, delta.value(step_count++), explore_rng);
      const auto result = env.step(action);
      qtable.update(state, action, result.reward, env.state(),
                    env.action_mask(), result.episode_done);
    }
    episode_cells.push_back(env.stats().average_selections_per_cycle());
  }
  const double train_ms = train_watch.elapsed_ms();
  report.add("tabular_training_episode", train_ms / episodes,
             static_cast<double>(episodes), episodes * 1e3 / train_ms);

  // Greedy tabular policy vs random, on the same environment.
  env.reset();
  while (!env.episode_done()) {
    const auto a =
        qtable.select_action(env.state(), env.action_mask(), 0.0, explore_rng);
    env.step(a);
  }
  const double tabular_cells = env.stats().average_selections_per_cycle();

  baselines::RandomSelector random(3);
  env.reset();
  while (!env.episode_done()) env.step(random.select(env));
  const double random_cells = env.stats().average_selections_per_cycle();

  TablePrinter table({"policy", "avg cells/cycle (of 5)"});
  table.add_row("tabular Q (greedy)", {tabular_cells});
  table.add_row("RANDOM", {random_cells});
  std::cout << "Fig. 5 companion — tabular Q-learning on a 5-cell task ("
            << episodes << " training episodes):\n";
  table.print(std::cout);
  std::cout << "\ntraining curve (cells/cycle per episode): ";
  for (std::size_t i = 0; i < episode_cells.size();
       i += std::max<std::size_t>(1, episode_cells.size() / 10))
    std::cout << format_double(episode_cells[i], 2) << " ";
  std::cout << "\nQ-table rows learned: " << qtable.table_size()
            << "  (state space: 2^" << env_options.history_cycles *
                                           task->num_cells()
            << " = "
            << std::pow(2.0, static_cast<double>(env_options.history_cycles *
                                                 task->num_cells()))
            << " states — why Sec. 4.3 switches to a DRQN for 57 cells)\n";
  return bench::finish_report(report, json, total);
}
