// Regenerates Table 1 of the paper: statistics of the two evaluation
// datasets. Paper values for reference —
//   Sensor-Scope: Lausanne, 57 cells of 50 m x 30 m, 0.5 h cycles, 7 d,
//                 temperature 6.04 ± 1.87 °C, humidity 84.52 ± 6.32 %.
//   U-Air:        Beijing, 36 cells of 1 km², 1 h cycles, 11 d,
//                 PM2.5 79.11 ± 81.21.
#include <iostream>

#include "bench_common.h"
#include "data/datasets.h"
#include "util/table.h"

using namespace drcell;

namespace {
void add_stats_row(TablePrinter& table, const data::DatasetStats& s,
                   const std::string& metric) {
  table.add_row({s.name, std::to_string(s.num_cells),
                 std::to_string(s.num_cycles), format_double(s.cycle_hours, 1),
                 format_double(s.duration_days, 0),
                 format_double(s.mean, 2) + " +- " + format_double(s.stddev, 2),
                 format_double(s.min, 1) + " .. " + format_double(s.max, 1),
                 metric});
}
}  // namespace

int main(int argc, char** argv) {
  const std::string json = bench::json_path(argc, argv, "BENCH_table1.json");
  bench::JsonReporter report("table1_datasets", bench::quick_mode(argc, argv));
  Stopwatch total;
  Stopwatch generation_watch;
  const auto sensorscope = data::make_sensorscope_like(2018);
  const auto uair = data::make_uair_like(2013);
  const double generation_ms = generation_watch.elapsed_ms();
  report.add("dataset_generation_both", generation_ms, 1,
             1e3 / generation_ms);

  TablePrinter table({"dataset", "cells", "cycles", "cycle (h)",
                      "duration (d)", "mean +- std", "range", "error metric"});
  add_stats_row(table, data::compute_stats(sensorscope.temperature),
                sensorscope.temperature.metric().name());
  add_stats_row(table, data::compute_stats(sensorscope.humidity),
                sensorscope.humidity.metric().name());
  add_stats_row(table, data::compute_stats(uair.pm25),
                uair.pm25.metric().name());

  std::cout << "Table 1 — evaluation dataset statistics (synthetic "
               "equivalents, see DESIGN.md):\n";
  table.print(std::cout);
  std::cout << "\npaper targets: temperature 6.04 +- 1.87 degC; humidity "
               "84.52 +- 6.32 %; PM2.5 79.11 +- 81.21\n";
  return bench::finish_report(report, json, total);
}
