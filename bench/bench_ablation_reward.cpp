// Ablation A3 (DESIGN.md): reward shaping R (quality bonus) and c (sensing
// cost). The paper's worked example sets R to the number of cells and
// c = 1; this sweeps the ratio and reports the deployed budget.
#include "bench_common.h"

using namespace drcell;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::string json = bench::json_path(argc, argv, "BENCH_ablation_reward.json");
  bench::JsonReporter report("a3_reward", quick);
  Stopwatch total_watch;
  const std::size_t episodes = quick ? 2 : 8;

  const auto dataset = data::make_sensorscope_like(2018);
  auto slices = bench::make_slices(dataset.temperature, 48, 96);
  slices.test_task = std::make_shared<const mcs::SensingTask>(
      slices.test_task->slice_cycles(0, quick ? 48 : 96));
  const double epsilon = 0.3;
  const double m = static_cast<double>(dataset.temperature.num_cells());

  struct Shape {
    const char* label;
    double bonus;
    double cost;
  };
  const Shape shapes[] = {{"R = m/2, c = 1", m / 2, 1.0},
                          {"R = m,   c = 1", m, 1.0},
                          {"R = 2m,  c = 1", 2 * m, 1.0},
                          {"R = m,   c = 2", m, 2.0}};

  TablePrinter table({"reward shape", "avg cells/cycle", "satisfaction"});
  for (const auto& shape : shapes) {
    core::DrCellConfig config = bench::paper_config(
        dataset.temperature.num_cells(), 48, episodes * 500);
    config.env.reward_bonus = shape.bonus;
    config.env.cost = shape.cost;
    std::cout << "training with " << shape.label << "...\n";
    auto agent = bench::train_drcell(slices, epsilon, config, episodes);
    core::DrCellPolicy policy(agent);
    const auto r = bench::evaluate(slices, policy, epsilon, 0.9, config);
    table.add_row(shape.label,
                  {r.avg_cells_per_cycle, r.satisfaction_ratio});
  }

  std::cout << "\nA3 — reward shaping ablation (temperature, "
               "(0.3 degC, 0.9)-quality):\n";
  table.print(std::cout);
  return bench::finish_report(report, json, total_watch);
}
