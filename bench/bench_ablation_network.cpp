// Ablation A1 (DESIGN.md): does the recurrent network matter?
// Sec. 4.3 argues dense layers "cannot catch the temporal pattern well" and
// proposes an LSTM. This bench trains the DRQN (LSTM) and the dense MLP
// variant with identical budgets on the temperature task and compares the
// deployed per-cycle budgets.
#include "bench_common.h"

using namespace drcell;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::string json = bench::json_path(argc, argv, "BENCH_ablation_network.json");
  bench::JsonReporter report("a1_network", quick);
  Stopwatch total_watch;
  const std::size_t episodes = quick ? 2 : 8;

  const auto dataset = data::make_sensorscope_like(2018);
  auto slices = bench::make_slices(dataset.temperature, 48, 96);
  // Shorter test horizon than Fig. 6: this is a relative comparison.
  slices.test_task = std::make_shared<const mcs::SensingTask>(
      slices.test_task->slice_cycles(0, quick ? 48 : 96));
  const double epsilon = 0.3;
  const std::size_t cells = dataset.temperature.num_cells();

  TablePrinter table({"network", "avg cells/cycle", "satisfaction"});
  for (const auto kind : {core::NetworkKind::kDrqn, core::NetworkKind::kMlp}) {
    core::DrCellConfig config =
        bench::paper_config(cells, 48, episodes * 500);
    config.network = kind;
    config.mlp_hidden = {128, 64};
    const char* name =
        kind == core::NetworkKind::kDrqn ? "DRQN (LSTM)" : "DQN (dense MLP)";
    std::cout << "training " << name << "...\n";
    auto agent = bench::train_drcell(slices, epsilon, config, episodes);
    core::DrCellPolicy policy(agent);
    const auto r = bench::evaluate(slices, policy, epsilon, 0.9, config);
    table.add_row(name, {r.avg_cells_per_cycle, r.satisfaction_ratio});
  }

  std::cout << "\nA1 — network architecture ablation (temperature, "
               "(0.3 degC, 0.9)-quality):\n";
  table.print(std::cout);
  return bench::finish_report(report, json, total_watch);
}
