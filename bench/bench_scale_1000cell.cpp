// Scale workload beyond the paper's 57 cells: a synthetic 1000-cell city
// deployment (ROADMAP scale target). Exercises the pieces that must hold up
// at many-cell scale — the blocked matmul behind the completion
// reconstruction, the ThreadPool-parallel ALS sweeps and LOO quality-gate
// solves, the pooled inference committee, the O(observed) sparse
// observation paths and the O(1) environment selection loop — and writes
// the BENCH_scale_1000cell.json report that CI gates against the committed
// baseline via tools/compare_bench.py (policy in bench/README.md).
//
//   ./build/bench_scale_1000cell [--quick] [--json [path]]
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "cs/committee.h"
#include "cs/knn_inference.h"
#include "cs/mean_inference.h"
#include "cs/temporal_inference.h"
#include "mcs/environment.h"
#include "mcs/quality.h"
#include "rl/dqn_trainer.h"
#include "rl/drqn_qnetwork.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace drcell;

namespace {

constexpr std::size_t kWindowCycles = 48;
constexpr std::size_t kDenseCycles = 24;  // preliminary-study block
constexpr double kSparseDensity = 0.10;   // scale-target observation rate

/// 1000 x 48 window: the first 24 cycles fully observed (warm start), the
/// rest at the 10% density the scale target is specified at.
cs::PartialMatrix make_scale_window(const mcs::SensingTask& task) {
  cs::PartialMatrix window(task.num_cells(), kWindowCycles);
  Rng rng(3);
  for (std::size_t c = 0; c < kWindowCycles; ++c)
    for (std::size_t cell = 0; cell < task.num_cells(); ++cell)
      if (c < kDenseCycles || rng.bernoulli(kSparseDensity))
        window.set(cell, c, task.truth(cell, c));
  return window;
}

/// Successive sensing-cycle windows, each revealing ~`reveals` more entries
/// of the sparse block — the warm-start resume pattern of a live campaign.
std::vector<cs::PartialMatrix> make_window_sequence(
    const mcs::SensingTask& task, std::size_t steps, std::size_t reveals) {
  std::vector<cs::PartialMatrix> windows;
  cs::PartialMatrix window = make_scale_window(task);
  Rng rng(71);
  for (std::size_t s = 0; s < steps; ++s) {
    for (std::size_t k = 0; k < reveals; ++k) {
      const std::size_t cell = rng.uniform_index(task.num_cells());
      const std::size_t cycle =
          kDenseCycles + rng.uniform_index(kWindowCycles - kDenseCycles);
      if (!window.observed(cell, cycle))
        window.set(cell, cycle, task.truth(cell, cycle));
    }
    windows.push_back(window);
  }
  return windows;
}

void bench_completion(const mcs::SensingTask& task,
                      bench::JsonReporter& report, bool quick) {
  const auto window = make_scale_window(task);

  // Cold solve, serial vs pooled ALS sweeps. On single-core hardware the
  // pool degrades to the serial path and the ratio reads ~1.0; the solves
  // are bit-identical either way (tests/sparse_paths_test.cpp).
  cs::MatrixCompletionOptions cold_opts;
  cold_opts.warm_start = false;
  cs::MatrixCompletion pooled(cold_opts);
  util::ThreadPool pool;  // hardware-sized
  pooled.set_thread_pool(&pool);
  cs::MatrixCompletion serial(cold_opts);
  util::ThreadPool serial_pool(0);
  serial.set_thread_pool(&serial_pool);

  const double target = quick ? 300.0 : 800.0;
  const auto pooled_run =
      bench::measure_ms([&] { (void)pooled.infer(window); }, target, 50);
  const auto serial_run =
      bench::measure_ms([&] { (void)serial.infer(window); }, target, 50);
  report.add_with_reference("scale_als_infer_cold", pooled_run.wall_ms,
                            pooled_run.iterations, 1e3 / pooled_run.wall_ms,
                            serial_run.wall_ms, serial_run.iterations);
  std::cout << "1000-cell cold ALS infer: pooled(" << pool.worker_count() + 1
            << " lanes) " << format_double(pooled_run.wall_ms, 2)
            << " ms, serial " << format_double(serial_run.wall_ms, 2)
            << " ms\n";

  // Warm-started per-cycle resume over an evolving window (~100 reveals =
  // one sensing cycle's worth of new observations at 10% density).
  const auto windows = make_window_sequence(task, quick ? 3 : 6, 100);
  const double cycles = static_cast<double>(windows.size());
  const cs::MatrixCompletion warm;  // warm-start on by default
  const auto warm_run = bench::measure_ms(
      [&] {
        for (const auto& w : windows) (void)warm.infer(w);
      },
      target, 50);
  const double warm_ms = warm_run.wall_ms / cycles;
  report.add("scale_als_infer_warm_cycle", warm_ms,
             warm_run.iterations * cycles, 1e3 / warm_ms);
  std::cout << "1000-cell warm ALS infer per cycle: "
            << format_double(warm_ms, 2) << " ms\n";
}

void bench_committee(const mcs::SensingTask& task,
                     bench::JsonReporter& report, bool quick) {
  const auto window = make_scale_window(task);
  cs::MatrixCompletionOptions mc_opts;
  mc_opts.warm_start = false;  // identical work in both modes
  const auto make_members = [&] {
    std::vector<cs::InferenceEnginePtr> members;
    members.push_back(std::make_shared<cs::MeanInference>());
    members.push_back(std::make_shared<cs::TemporalInterpolation>());
    members.push_back(std::make_shared<cs::KnnInference>(task.coords()));
    members.push_back(std::make_shared<cs::MatrixCompletion>(mc_opts));
    return members;
  };

  cs::InferenceCommittee serial(make_members());
  util::ThreadPool serial_pool(0);
  serial.set_thread_pool(&serial_pool);
  cs::InferenceCommittee pooled(make_members());
  util::ThreadPool pool;  // hardware-sized
  pooled.set_thread_pool(&pool);

  const double target = quick ? 300.0 : 800.0;
  const auto pooled_run =
      bench::measure_ms([&] { (void)pooled.infer_all(window); }, target, 20);
  const auto serial_run =
      bench::measure_ms([&] { (void)serial.infer_all(window); }, target, 20);
  report.add_with_reference("scale_committee_infer_all", pooled_run.wall_ms,
                            pooled_run.iterations, 1e3 / pooled_run.wall_ms,
                            serial_run.wall_ms, serial_run.iterations);
  std::cout << "1000-cell committee infer_all: pooled "
            << format_double(pooled_run.wall_ms, 2) << " ms, serial "
            << format_double(serial_run.wall_ms, 2) << " ms\n";
}

void bench_gate(const mcs::SensingTask& task, bench::JsonReporter& report,
                bool quick) {
  const auto window = make_scale_window(task);
  const mcs::LooBayesianGate gate(0.5, 0.9);

  // Pooled vs serial LOO pass. Both engines are warm (the fit caches after
  // the first call), so the measurement reads the gate's per-decision cost
  // — the independent held-out solves, which fan out over the pool like the
  // ALS half-sweeps. On single-core hardware the ratio reads ~1.0; the
  // decisions are bit-identical either way (checked below and in
  // tests/sparse_paths_test.cpp).
  cs::MatrixCompletion pooled_engine;
  util::ThreadPool pool;  // hardware-sized
  pooled_engine.set_thread_pool(&pool);
  cs::MatrixCompletion serial_engine;
  util::ThreadPool serial_pool(0);
  serial_engine.set_thread_pool(&serial_pool);

  const Matrix inferred = pooled_engine.infer(window);
  (void)serial_engine.infer(window);
  const mcs::QualityContext pooled_ctx{task,     window, kWindowCycles - 1,
                                       kWindowCycles - 1, &inferred,
                                       pooled_engine};
  const mcs::QualityContext serial_ctx{task,     window, kWindowCycles - 1,
                                       kWindowCycles - 1, &inferred,
                                       serial_engine};
  if (gate.probability(pooled_ctx) != gate.probability(serial_ctx)) {
    std::cerr << "FAIL: pooled LOO gate decision diverged from serial\n";
    std::exit(1);
  }

  const double target = quick ? 150.0 : 400.0;
  const auto pooled_run = bench::measure_ms(
      [&] { (void)gate.probability(pooled_ctx); }, target, 500);
  const auto serial_run = bench::measure_ms(
      [&] { (void)gate.probability(serial_ctx); }, target, 500);
  report.add_with_reference("scale_quality_gate_decision",
                            pooled_run.wall_ms, pooled_run.iterations,
                            1e3 / pooled_run.wall_ms, serial_run.wall_ms,
                            serial_run.iterations);
  std::cout << "1000-cell LOO gate decision: pooled("
            << pool.worker_count() + 1 << " lanes) "
            << format_double(pooled_run.wall_ms, 3) << " ms, serial "
            << format_double(serial_run.wall_ms, 3) << " ms\n";
}

void bench_environment(const mcs::SensingTask& task,
                       bench::JsonReporter& report, bool quick) {
  auto test_task = std::make_shared<const mcs::SensingTask>(
      task.slice_cycles(kWindowCycles, task.num_cycles()));
  mcs::EnvOptions options;
  options.inference_window = kWindowCycles;
  options.min_observations = 4;
  options.max_selections_per_cycle = 100;  // bound a never-satisfied cycle
  options.warm_start =
      task.slice_cycles(0, kWindowCycles).ground_truth();
  auto env = mcs::SparseMcsEnvironment(
      test_task, std::make_shared<cs::MatrixCompletion>(),
      std::make_shared<mcs::LooBayesianGate>(0.5, 0.9), options);
  Rng rng(5);
  const auto pick = [&rng](const mcs::SparseMcsEnvironment& e) {
    const auto& allowed = e.unsensed_cells();
    return allowed[rng.uniform_index(allowed.size())];
  };
  const auto cycle = bench::measure_ms(
      [&] {
        if (env.episode_done()) env.reset();
        (void)env.run_cycle(pick);
      },
      quick ? 300.0 : 800.0, 50);
  report.add("scale_environment_cycle", cycle.wall_ms, cycle.iterations,
             1e3 / cycle.wall_ms);
  std::cout << "1000-cell environment sensing cycle: "
            << format_double(cycle.wall_ms, 2) << " ms ("
            << format_double(1e3 / cycle.wall_ms, 1) << " cycles/s)\n";
}

void bench_selection(const mcs::SensingTask& task,
                     bench::JsonReporter& report, bool quick) {
  // Pure selection micro-op, mid-cycle (100 of 1000 cells already sensed):
  // drawing one allowed cell from the environment's incremental unsensed
  // set vs the seed behaviour of rebuilding the 0/1 action mask from the
  // selection matrix and materialising an allowed-cell list per pick. The
  // fast path is O(1) per pick, so the ratio grows with the cell count.
  auto test_task = std::make_shared<const mcs::SensingTask>(
      task.slice_cycles(kWindowCycles, task.num_cycles()));
  mcs::EnvOptions options;
  options.inference_window = kWindowCycles;
  options.min_observations = 200;  // keep inference/gate out of the setup
  options.warm_start = task.slice_cycles(0, kWindowCycles).ground_truth();
  auto env = mcs::SparseMcsEnvironment(
      test_task, std::make_shared<cs::MatrixCompletion>(),
      std::make_shared<mcs::LooBayesianGate>(0.5, 0.9), options);
  Rng setup(11);
  for (int k = 0; k < 100; ++k) {
    const auto& allowed = env.unsensed_cells();
    (void)env.step(allowed[setup.uniform_index(allowed.size())]);
  }

  constexpr int kPicks = 1024;  // batch: one pick is ns-scale
  const std::size_t cells = env.num_cells();
  const std::size_t cycle = env.current_cycle();
  std::size_t sink = 0;
  Rng rng(13);
  const double target = quick ? 100.0 : 250.0;
  const auto fast_run = bench::measure_ms(
      [&] {
        for (int k = 0; k < kPicks; ++k) {
          const auto& allowed = env.unsensed_cells();
          sink += allowed[rng.uniform_index(allowed.size())];
        }
      },
      target, 100000);
  const auto naive_run = bench::measure_ms(
      [&] {
        for (int k = 0; k < kPicks; ++k) {
          std::vector<std::uint8_t> mask(cells, 0);
          for (std::size_t cell = 0; cell < cells; ++cell)
            if (!env.selections().selected(cell, cycle)) mask[cell] = 1;
          std::vector<std::size_t> allowed;
          for (std::size_t a = 0; a < cells; ++a)
            if (mask[a]) allowed.push_back(a);
          sink += allowed[rng.uniform_index(allowed.size())];
        }
      },
      target, 100000);
  const double fast_ms = fast_run.wall_ms / kPicks;
  const double naive_ms = naive_run.wall_ms / kPicks;
  report.add_with_reference("scale_selection_pick", fast_ms,
                            static_cast<double>(fast_run.iterations) * kPicks,
                            1e3 / fast_ms, naive_ms,
                            static_cast<double>(naive_run.iterations) *
                                kPicks);
  std::cout << "1000-cell selection pick: incremental "
            << format_double(fast_ms * 1e6, 0) << " ns, rebuild "
            << format_double(naive_ms * 1e6, 0) << " ns (sink " << sink % 10
            << ")\n";
}

/// The paper's DRQN architecture at the 1000-cell deployment scale (k = 2,
/// 64 LSTM units, batch 32): one batched minibatch update vs the retained
/// per-sample reference. At this width the reference materialises a ~2 MB
/// Wxᵀ per sample per step, so the batched engine's advantage grows with
/// the cell count.
void bench_train_step(std::size_t cells, bench::JsonReporter& report,
                      bool quick) {
  const auto make_trainer = [&] {
    Rng net_rng(2);
    rl::DqnOptions options;
    options.batch_size = 32;
    options.min_replay = 32;
    rl::DqnTrainer trainer(
        std::make_unique<rl::DrqnQNetwork>(cells, 2, 64, 0, net_rng),
        options, 7);
    Rng fill(3);
    for (int i = 0; i < 256; ++i) {
      rl::Experience e;
      e.state.assign(2 * cells, 0.0);
      e.state[fill.uniform_index(2 * cells)] = 1.0;
      e.action = fill.uniform_index(cells);
      e.reward = fill.uniform(-1.0, 56.0);
      e.next_state.assign(2 * cells, 0.0);
      e.next_mask.assign(cells, 1);
      trainer.observe(std::move(e));
    }
    return trainer;
  };

  const double target = quick ? 200.0 : 600.0;
  rl::DqnTrainer batched = make_trainer();
  const auto run = bench::measure_ms([&] { (void)batched.train_step(); },
                                     target, 500);
#ifdef DRCELL_ENABLE_REFERENCE_KERNELS
  rl::DqnTrainer reference = make_trainer();
  const auto ref_run = bench::measure_ms(
      [&] { (void)reference.train_step_reference(); }, target, 500);
  report.add_with_reference("scale_train_step_1000cell", run.wall_ms,
                            run.iterations, 1e3 / run.wall_ms,
                            ref_run.wall_ms, ref_run.iterations);
  std::cout << "1000-cell DRQN train step: batched "
            << format_double(run.wall_ms, 2) << " ms, per-sample reference "
            << format_double(ref_run.wall_ms, 2) << " ms, speedup "
            << format_double(ref_run.wall_ms / run.wall_ms, 2) << "x\n";
#else
  report.add("scale_train_step_1000cell", run.wall_ms, run.iterations,
             1e3 / run.wall_ms);
  std::cout << "1000-cell DRQN train step: batched "
            << format_double(run.wall_ms, 2) << " ms\n";
#endif
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::string backend = bench::select_backend(argc, argv);
  const std::string json =
      bench::json_path(argc, argv, "BENCH_scale_1000cell.json");
  bench::JsonReporter report("scale_1000cell", quick);
  report.set_backend(backend);
  Stopwatch total;

  std::cout << "generating 1000-cell city-scale task (25 x 40 grid)...\n";
  Stopwatch gen_watch;
  const auto task = data::make_city_scale_task(25, 40, quick ? 72 : 96);
  const double gen_ms = gen_watch.elapsed_ms();
  report.add("city_scale_generation", gen_ms, 1, 1e3 / gen_ms);
  std::cout << "  " << task.num_cells() << " cells x " << task.num_cycles()
            << " cycles in " << format_double(gen_ms / 1e3, 1) << " s\n";

  bench_completion(task, report, quick);
  bench_committee(task, report, quick);
  bench_gate(task, report, quick);
  bench_selection(task, report, quick);
  bench_environment(task, report, quick);
  bench_train_step(task.num_cells(), report, quick);

  std::cout << "total bench time: "
            << format_double(total.elapsed_seconds(), 1) << " s\n";
  return bench::finish_report(report, json, total);
}
