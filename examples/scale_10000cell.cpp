// 10,000-cell metro-scale sensing campaign — the ROADMAP 10k tier, two
// orders of magnitude beyond the paper's 57-cell campus. The synthetic
// field comes from the low-rank Nyström spatial sampler (O(cells·k²) with
// 256 landmark cells; the exact O(cells³) Cholesky is infeasible at this
// size), and the campaign leans on every scale path in the stack: the
// O(observed) sparse observation lists, warm-started ALS completion, the
// pooled LOO quality gate and the O(1) selection loop. A handful of full
// sensing cycles run end to end and the table reports sensing throughput
// next to the quality numbers.
//
// Build & run:  ./build/example_scale_10000cell
#include <iostream>
#include <memory>

#include "baselines/random_selector.h"
#include "core/campaign.h"
#include "cs/matrix_completion.h"
#include "data/datasets.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace drcell;

int main() {
  std::cout << "generating metro-scale data (10,000 cells on a 100 x 100 "
               "grid, 0.5 h cycles, Nyström low-rank sampler)...\n";
  Stopwatch gen_watch;
  // 48 warm-up cycles for the inference window plus a short deployed slice:
  // at this scale the example demonstrates full sensing cycles, not a
  // multi-day campaign.
  const auto task = data::make_metro_scale_task(100, 100, /*cycles=*/56);
  auto test_task = std::make_shared<const mcs::SensingTask>(
      task.slice_cycles(48, 56));
  std::cout << "  done in " << format_double(gen_watch.elapsed_seconds(), 2)
            << " s (the exact Cholesky would need ~3*10^11 flops and an "
               "800 MB kernel)\n";

  core::CampaignConfig campaign;
  campaign.epsilon = 1.0;  // degrees C
  campaign.p = 0.9;
  campaign.env.inference_window = 48;
  campaign.env.min_observations = 10;
  // Safety cap: never sense more than 3% of the metro in one cycle.
  campaign.env.max_selections_per_cycle = 300;
  campaign.env.warm_start = task.slice_cycles(0, 48).ground_truth();

  auto engine = std::make_shared<cs::MatrixCompletion>();
  baselines::RandomSelector random(7);

  std::cout << "running an 8-cycle campaign with " << random.name()
            << " selection...\n\n";
  const auto r = core::run_campaign(test_task, engine, random, campaign);

  TablePrinter table({"method", "cells/cycle", "of 10000", "satisfaction",
                      "MAE (degC)", "cycles/s"});
  table.add_row(r.selector,
                {r.avg_cells_per_cycle,
                 100.0 * r.avg_cells_per_cycle /
                     static_cast<double>(test_task->num_cells()),
                 r.satisfaction_ratio, r.mean_cycle_error,
                 static_cast<double>(r.cycles) / r.seconds});
  table.print(std::cout);
  std::cout << "\n(quality gate: MAE <= 1.0 degC with p = 0.9; 'of 10000' "
               "is the percentage of the metro sensed per cycle)\n";
  return 0;
}
