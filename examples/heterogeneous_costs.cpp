// Future-work extension (paper Sec. 6): "a case where the data collection
// costs of different cells are diverse". Cells in the city centre are cheap
// to sense (many participants pass by); remote cells are expensive. The
// environment's cell_costs vector feeds the per-action cost into the reward
// R·q − c(cell), so a trained DR-Cell agent learns to prefer cheap cells
// when several choices preserve inference quality equally well.
//
// Build & run:  ./build/examples/heterogeneous_costs
#include <cmath>
#include <iostream>
#include <memory>

#include "baselines/random_selector.h"
#include "core/campaign.h"
#include "core/policy.h"
#include "core/trainer.h"
#include "cs/matrix_completion.h"
#include "data/synthetic_field.h"
#include "util/table.h"

using namespace drcell;

int main() {
  // 5x5 grid; sensing cost grows with distance from the centre cell.
  const auto coords = data::grid_coords(5, 5, 100.0, 100.0);
  std::vector<double> cell_costs;
  for (const auto& c : coords) {
    const double dx = c.x - 250.0, dy = c.y - 250.0;
    const double dist = std::sqrt(dx * dx + dy * dy);
    cell_costs.push_back(1.0 + dist / 150.0);  // 1.0 (centre) .. ~3.4 (corner)
  }

  data::SyntheticFieldGenerator generator(coords);
  data::FieldParams params;
  params.mean = 18.0;
  params.stddev = 2.0;
  params.spatial_length = 220.0;
  params.temporal_ar1 = 0.95;
  Rng rng(5);
  auto task = std::make_shared<const mcs::SensingTask>(
      "cost-aware-temperature", generator.generate(params, 120, rng), coords,
      mcs::ErrorMetric::mae(), 1.0);
  auto training_task =
      std::make_shared<const mcs::SensingTask>(task->slice_cycles(0, 36));
  auto test_task =
      std::make_shared<const mcs::SensingTask>(task->slice_cycles(36, 120));

  const double epsilon = 0.7;
  core::DrCellConfig config;
  config.lstm_hidden = 32;
  config.dqn.epsilon = rl::EpsilonSchedule(1.0, 0.05, 3000);
  config.env.min_observations = 2;
  config.env.inference_window = 8;
  config.env.cell_costs = cell_costs;  // <- the extension
  config.env.reward_bonus = 30.0;      // keep the bonus above the max cost

  auto engine = std::make_shared<cs::MatrixCompletion>();
  core::DrCellAgent agent(task->num_cells(), config);
  auto train_env =
      core::make_training_environment(training_task, engine, epsilon, config);
  std::cout << "training a cost-aware DR-Cell agent...\n";
  core::train_agent(agent, train_env, 10);

  core::CampaignConfig campaign;
  campaign.epsilon = epsilon;
  campaign.p = 0.9;
  campaign.env = config.env;
  campaign.env.history_cycles = config.history_cycles;

  core::DrCellPolicy drcell(agent);
  baselines::RandomSelector random(6);

  TablePrinter table({"method", "avg cells/cycle", "avg cost/cycle",
                      "satisfaction"});
  for (baselines::CellSelector* selector :
       {static_cast<baselines::CellSelector*>(&drcell),
        static_cast<baselines::CellSelector*>(&random)}) {
    const auto r = core::run_campaign(test_task, engine, *selector, campaign);
    table.add_row(r.selector,
                  {r.avg_cells_per_cycle,
                   r.total_cost / static_cast<double>(r.cycles),
                   r.satisfaction_ratio});
  }
  table.print(std::cout);
  std::cout << "\n(equal cell counts can hide very different participant "
               "budgets: DR-Cell is trained on the cost-shaped reward and "
               "should show a lower cost per cycle)\n";
  return 0;
}
