// 1000-cell city-scale sensing campaign — the ROADMAP scale target, an
// order of magnitude beyond the paper's 57-cell campus. A deployment this
// size leans on the O(observed) sparse observation paths, the warm-started
// (and ThreadPool-parallel) ALS completion and the cached window
// fingerprint; this example runs a short campaign end to end and reports
// the sensing throughput alongside the quality numbers.
//
// Build & run:  ./build/example_scale_1000cell [--json [path]]
#include <iostream>
#include <memory>

#include "baselines/random_selector.h"
#include "core/campaign.h"
#include "core/campaign_json.h"
#include "cs/matrix_completion.h"
#include "data/datasets.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace drcell;

int main(int argc, char** argv) {
  const std::string json =
      core::campaign_json_path(argc, argv, "CAMPAIGN_scale_1000cell.json");
  std::cout << "generating city-scale data (1000 cells on a 25 x 40 grid, "
               "0.5 h cycles)...\n";
  Stopwatch gen_watch;
  // 2 days: the first day warms the inference window, the second is sensed.
  const auto task = data::make_city_scale_task(25, 40, /*cycles=*/96);
  auto test_task = std::make_shared<const mcs::SensingTask>(
      task.slice_cycles(48, 96));
  std::cout << "  done in " << format_double(gen_watch.elapsed_seconds(), 1)
            << " s\n";

  core::CampaignConfig campaign;
  campaign.epsilon = 1.0;  // degrees C
  campaign.p = 0.9;
  campaign.env.inference_window = 48;
  campaign.env.min_observations = 4;
  // Safety cap: never sense more than 10% of the city in one cycle.
  campaign.env.max_selections_per_cycle = 100;
  campaign.env.warm_start = task.slice_cycles(0, 48).ground_truth();

  auto engine = std::make_shared<cs::MatrixCompletion>();
  baselines::RandomSelector random(7);

  std::cout << "running a 48-cycle campaign with " << random.name()
            << " selection...\n\n";
  auto r = core::run_campaign(test_task, engine, random, campaign);
  r.id = r.selector;

  TablePrinter table({"method", "cells/cycle", "of 1000", "satisfaction",
                      "MAE (degC)", "cycles/s"});
  table.add_row(r.selector,
                {r.avg_cells_per_cycle,
                 100.0 * r.avg_cells_per_cycle /
                     static_cast<double>(test_task->num_cells()),
                 r.satisfaction_ratio, r.mean_cycle_error,
                 static_cast<double>(r.cycles) / r.seconds});
  table.print(std::cout);
  std::cout << "\n(quality gate: MAE <= 1.0 degC with p = 0.9; 'of 1000' is "
               "the percentage of the city sensed per cycle)\n";
  if (!json.empty() &&
      !core::write_campaign_json_file(json, "scale_1000cell", {r}))
    return 1;
  return 0;
}
