// Future-work extension (paper Sec. 6): "conduct the reinforcement learning
// based cell selection in an online manner, so that we do not need a
// preliminary study stage". OnlineAdaptivePolicy keeps δ-greedy exploration
// and Q-updates running *during* the testing stage. The reward is
// observable online because q is the LOO Bayesian gate's decision, not the
// unknown true error.
//
// This example deploys a completely untrained agent and lets it adapt
// in-flight, versus staying frozen at its random initialisation.
//
// Build & run:  ./build/examples/online_adaptation
#include <iostream>
#include <memory>

#include "core/campaign.h"
#include "core/policy.h"
#include "cs/matrix_completion.h"
#include "data/synthetic_field.h"
#include "util/table.h"

using namespace drcell;

int main() {
  const auto coords = data::grid_coords(4, 4, 100.0, 100.0);
  data::SyntheticFieldGenerator generator(coords);
  data::FieldParams params;
  params.mean = 22.0;
  params.stddev = 2.0;
  params.spatial_length = 170.0;
  params.temporal_ar1 = 0.95;
  Rng rng(11);
  auto task = std::make_shared<const mcs::SensingTask>(
      "online-temperature", generator.generate(params, 168, rng), coords,
      mcs::ErrorMetric::mae(), 1.0);

  core::DrCellConfig config;
  config.lstm_hidden = 32;
  config.env.min_observations = 2;
  config.env.inference_window = 8;
  config.dqn.min_replay = 64;

  core::CampaignConfig campaign;
  campaign.epsilon = 0.8;
  campaign.p = 0.9;
  campaign.env = config.env;
  campaign.env.history_cycles = config.history_cycles;

  auto engine = std::make_shared<cs::MatrixCompletion>();

  // Arm 1: frozen, untrained agent (no preliminary study, no adaptation).
  config.seed = 101;
  core::DrCellAgent frozen_agent(task->num_cells(), config);
  core::DrCellPolicy frozen(frozen_agent);

  // Arm 2: identical initialisation, but learns online while deployed.
  config.seed = 101;
  core::DrCellAgent online_agent(task->num_cells(), config);
  core::OnlineAdaptivePolicy online(online_agent, /*epsilon=*/0.08,
                                    /*seed=*/202);

  std::cout << "running one week of cycles with each arm...\n";
  TablePrinter table({"arm", "avg cells/cycle", "satisfaction"});
  const auto frozen_result = core::run_campaign(task, engine, frozen,
                                                campaign);
  table.add_row("FROZEN (untrained)",
                {frozen_result.avg_cells_per_cycle,
                 frozen_result.satisfaction_ratio});
  const auto online_result = core::run_campaign(task, engine, online,
                                                campaign);
  table.add_row("ONLINE (adapts in-flight)",
                {online_result.avg_cells_per_cycle,
                 online_result.satisfaction_ratio});
  table.print(std::cout);

  // Show the adaptation within the online run: first vs last quarter.
  const auto& per_cycle = online_result.stats.cycle_selected;
  const std::size_t quarter = per_cycle.size() / 4;
  double early = 0.0, late = 0.0;
  for (std::size_t i = 0; i < quarter; ++i) {
    early += static_cast<double>(per_cycle[i]);
    late += static_cast<double>(per_cycle[per_cycle.size() - 1 - i]);
  }
  std::cout << "\nonline arm, first quarter of the deployment: "
            << format_double(early / static_cast<double>(quarter), 2)
            << " cells/cycle; last quarter: "
            << format_double(late / static_cast<double>(quarter), 2)
            << " cells/cycle\n";
  std::cout << "(the online learner's per-cycle budget should drift down as "
               "its Q-function improves)\n";
  return 0;
}
