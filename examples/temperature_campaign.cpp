// Temperature monitoring on the Sensor-Scope-like campus dataset — the
// workload of the paper's Fig. 6 (left), scaled down so the example runs in
// well under a minute. DR-Cell trains on a preliminary study and is then
// deployed against QBC and RANDOM under a (0.3 °C, 0.9)-quality gate.
//
// Build & run:  ./build/example_temperature_campaign [--json [path]]
#include <iostream>
#include <memory>

#include "baselines/qbc_selector.h"
#include "baselines/random_selector.h"
#include "core/campaign.h"
#include "core/campaign_json.h"
#include "core/policy.h"
#include "core/trainer.h"
#include "cs/matrix_completion.h"
#include "data/datasets.h"
#include "util/table.h"

using namespace drcell;

int main(int argc, char** argv) {
  const std::string json =
      core::campaign_json_path(argc, argv, "CAMPAIGN_temperature.json");
  std::cout << "generating Sensor-Scope-like campus data (57 cells, 0.5 h "
               "cycles)...\n";
  const auto dataset = data::make_sensorscope_like(/*seed=*/2018);
  // Keep the example brisk: 1 training day + 2 testing days.
  auto full = std::make_shared<const mcs::SensingTask>(
      dataset.temperature.slice_cycles(0, 144));
  auto training_task =
      std::make_shared<const mcs::SensingTask>(full->slice_cycles(0, 48));
  auto test_task =
      std::make_shared<const mcs::SensingTask>(full->slice_cycles(48, 144));

  const double epsilon = 0.3;  // 0.3 degrees C, as in the paper
  const double p = 0.9;

  core::DrCellConfig config;
  config.lstm_hidden = 64;
  config.dqn.epsilon = rl::EpsilonSchedule(1.0, 0.05, 4000);
  config.dqn.learning_rate = 1e-3;
  config.env.min_observations = 3;
  config.env.inference_window = 10;

  auto engine = std::make_shared<cs::MatrixCompletion>();
  core::DrCellAgent agent(full->num_cells(), config);
  auto train_env =
      core::make_training_environment(training_task, engine, epsilon, config);
  std::cout << "training DR-Cell (8 episodes over the preliminary study)...\n";
  const auto training = core::train_agent(agent, train_env, 8);
  std::cout << "  done in " << format_double(training.seconds, 1) << " s\n\n";

  core::CampaignConfig campaign;
  campaign.epsilon = epsilon;
  campaign.p = p;
  campaign.env = config.env;
  campaign.env.history_cycles = config.history_cycles;

  core::DrCellPolicy drcell(agent);
  auto qbc = baselines::QbcSelector::make_default(*test_task, 31);
  baselines::RandomSelector random(32);

  TablePrinter table(
      {"method", "avg cells/cycle", "of 57", "satisfaction", "MAE (degC)"});
  std::vector<core::CampaignResult> results;
  for (baselines::CellSelector* selector :
       {static_cast<baselines::CellSelector*>(&drcell),
        static_cast<baselines::CellSelector*>(&qbc),
        static_cast<baselines::CellSelector*>(&random)}) {
    std::cout << "running testing stage with " << selector->name() << "...\n";
    auto r = core::run_campaign(test_task, engine, *selector, campaign);
    r.id = r.selector;
    table.add_row(r.selector,
                  {r.avg_cells_per_cycle,
                   100.0 * r.avg_cells_per_cycle /
                       static_cast<double>(test_task->num_cells()),
                   r.satisfaction_ratio, r.mean_cycle_error});
    results.push_back(std::move(r));
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\n('of 57' is the percentage of the 57 campus cells sensed "
               "per cycle; quality gate: MAE <= 0.3 degC with p = 0.9)\n";
  if (!json.empty() &&
      !core::write_campaign_json_file(json, "temperature_campaign", results))
    return 1;
  return 0;
}
