// Running DR-Cell on *your own* measurements: this example shows the CSV
// round trip a downstream user needs — export a task to disk, load it back,
// and run a full train-and-deploy campaign from the loaded file.
//
// Usage:
//   ./build/examples/csv_campaign                 # demo with generated data
//   ./build/examples/csv_campaign my_task.csv     # your own task file
//
// The CSV format is documented in src/data/task_io.h.
#include <iostream>
#include <memory>

#include "baselines/random_selector.h"
#include "core/campaign.h"
#include "core/policy.h"
#include "core/trainer.h"
#include "cs/matrix_completion.h"
#include "data/datasets.h"
#include "data/task_io.h"
#include "util/table.h"

using namespace drcell;

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    // No file given: write a demo task and use it, demonstrating export.
    path = "demo_task.csv";
    const auto dataset = data::make_sensorscope_like(2018);
    data::save_task_csv_file(path,
                             dataset.temperature.slice_cycles(0, 192));
    std::cout << "wrote demo task to " << path << "\n";
  }

  const auto loaded = data::load_task_csv_file(path);
  std::cout << "loaded task '" << loaded.name() << "': "
            << loaded.num_cells() << " cells x " << loaded.num_cycles()
            << " cycles, metric " << loaded.metric().name() << "\n";

  // Split: first quarter warm-up, second quarter training, rest testing.
  const std::size_t quarter = loaded.num_cycles() / 4;
  DRCELL_CHECK_MSG(quarter >= 8, "task too short for a campaign demo");
  auto train_task = std::make_shared<const mcs::SensingTask>(
      loaded.slice_cycles(quarter, 2 * quarter));
  auto test_task = std::make_shared<const mcs::SensingTask>(
      loaded.slice_cycles(2 * quarter, loaded.num_cycles()));

  const double epsilon = 0.3;
  core::DrCellConfig config;
  config.lstm_hidden = 48;
  config.dqn.epsilon = rl::EpsilonSchedule(1.0, 0.05, 2500);
  config.env.min_observations = 4;
  config.env.inference_window = quarter;
  config.env.warm_start = loaded.slice_cycles(0, quarter).ground_truth();

  auto engine = std::make_shared<cs::MatrixCompletion>();
  core::DrCellAgent agent(loaded.num_cells(), config);
  auto env =
      core::make_training_environment(train_task, engine, epsilon, config);
  std::cout << "training DR-Cell (6 episodes)...\n";
  core::train_agent(agent, env, 6);

  core::CampaignConfig campaign;
  campaign.epsilon = epsilon;
  campaign.p = 0.9;
  campaign.env = config.env;
  campaign.env.warm_start =
      loaded.slice_cycles(quarter, 2 * quarter).ground_truth();

  core::DrCellPolicy drcell(agent);
  baselines::RandomSelector random(3);
  TablePrinter table({"method", "avg cells/cycle", "satisfaction"});
  for (baselines::CellSelector* selector :
       {static_cast<baselines::CellSelector*>(&drcell),
        static_cast<baselines::CellSelector*>(&random)}) {
    const auto r = core::run_campaign(test_task, engine, *selector, campaign);
    table.add_row(r.selector,
                  {r.avg_cells_per_cycle, r.satisfaction_ratio});
  }
  table.print(std::cout);
  return 0;
}
