// Quickstart: the whole DR-Cell pipeline in ~80 lines.
//
//  1. Make a sensing task (here: a synthetic temperature field).
//  2. Train DR-Cell's DRQN on a short preliminary study (training stage).
//  3. Deploy the frozen policy under an (epsilon, p)-quality gate and
//     compare it against the RANDOM baseline (testing stage).
//
// Build & run:  ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "baselines/random_selector.h"
#include "core/campaign.h"
#include "core/policy.h"
#include "core/trainer.h"
#include "cs/matrix_completion.h"
#include "data/synthetic_field.h"
#include "util/table.h"

using namespace drcell;

int main() {
  // --- 1. A 4x4-cell sensing area observed for 96 hourly cycles. ---------
  const auto coords = data::grid_coords(4, 4, 100.0, 100.0);
  data::SyntheticFieldGenerator generator(coords);
  data::FieldParams params;
  params.mean = 20.0;          // degrees C
  params.stddev = 2.5;
  params.spatial_length = 180.0;
  params.temporal_ar1 = 0.95;
  params.cycles_per_day = 24.0;
  Rng rng(7);
  auto task = std::make_shared<const mcs::SensingTask>(
      "quickstart-temperature", generator.generate(params, 96, rng), coords,
      mcs::ErrorMetric::mae(), 1.0);

  const double epsilon = 0.8;  // quality bound: MAE <= 0.8 degrees
  const double p = 0.9;        // ... in at least 90% of cycles

  // --- 2. Training stage on the first day (24 cycles). -------------------
  core::DrCellConfig config;
  config.lstm_hidden = 32;
  config.training_episodes = 10;
  config.dqn.epsilon = rl::EpsilonSchedule(1.0, 0.05, 1500);
  config.env.min_observations = 2;
  config.env.inference_window = 8;

  core::DrCellAgent agent(task->num_cells(), config);
  auto engine = std::make_shared<cs::MatrixCompletion>();
  auto training_task =
      std::make_shared<const mcs::SensingTask>(task->slice_cycles(0, 24));
  auto train_env =
      core::make_training_environment(training_task, engine, epsilon, config);
  const auto training = core::train_agent(agent, train_env, 10);
  std::cout << "trained " << training.episodes.size() << " episodes in "
            << format_double(training.seconds, 1) << " s; final policy uses "
            << format_double(training.final_cells_per_cycle(), 2)
            << " cells/cycle on the training data\n\n";

  // --- 3. Testing stage on the remaining three days. ---------------------
  auto test_task =
      std::make_shared<const mcs::SensingTask>(task->slice_cycles(24, 96));
  core::CampaignConfig campaign;
  campaign.epsilon = epsilon;
  campaign.p = p;
  campaign.env = config.env;
  campaign.env.history_cycles = config.history_cycles;

  core::DrCellPolicy drcell_policy(agent);
  baselines::RandomSelector random(99);

  TablePrinter table({"method", "avg cells/cycle", "satisfaction", "MAE"});
  for (baselines::CellSelector* selector :
       {static_cast<baselines::CellSelector*>(&drcell_policy),
        static_cast<baselines::CellSelector*>(&random)}) {
    const auto result = core::run_campaign(test_task, engine, *selector,
                                           campaign);
    table.add_row(result.selector,
                  {result.avg_cells_per_cycle, result.satisfaction_ratio,
                   result.mean_cycle_error});
  }
  table.print(std::cout);
  std::cout << "\n(epsilon = " << epsilon << " degrees, p = " << p
            << "; satisfaction is the post-hoc fraction of cycles whose true "
               "error met epsilon)\n";
  return 0;
}
