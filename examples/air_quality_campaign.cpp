// PM2.5 air-quality monitoring on the U-Air-like Beijing dataset — the
// workload of the paper's Fig. 6 (right). The error metric is categorical:
// a cell's inference is wrong when the inferred AQI *category* (Good,
// Moderate, ... Hazardous) differs from the true one, and the quality gate
// uses a Beta-Bernoulli posterior instead of the Gaussian CLT.
//
// Build & run:  ./build/example_air_quality_campaign [--json [path]]
#include <iostream>
#include <memory>

#include "baselines/qbc_selector.h"
#include "baselines/random_selector.h"
#include "core/campaign.h"
#include "core/campaign_json.h"
#include "core/policy.h"
#include "core/trainer.h"
#include "cs/matrix_completion.h"
#include "data/datasets.h"
#include "util/table.h"

using namespace drcell;

int main(int argc, char** argv) {
  const std::string json =
      core::campaign_json_path(argc, argv, "CAMPAIGN_air_quality.json");
  std::cout << "generating U-Air-like Beijing PM2.5 data (36 cells, hourly "
               "cycles, heavy-tailed)...\n";
  const auto dataset = data::make_uair_like(/*seed=*/2013);
  // 1 day training, 4 days testing.
  auto training_task = std::make_shared<const mcs::SensingTask>(
      dataset.pm25.slice_cycles(0, 24));
  auto test_task = std::make_shared<const mcs::SensingTask>(
      dataset.pm25.slice_cycles(24, 120));

  // Paper: epsilon = 9/36 misclassified cells, p = 0.9.
  const double epsilon = 9.0 / 36.0;
  const double p = 0.9;

  core::DrCellConfig config;
  config.lstm_hidden = 48;
  config.dqn.epsilon = rl::EpsilonSchedule(1.0, 0.05, 3000);
  config.env.min_observations = 3;
  config.env.inference_window = 10;

  auto engine = std::make_shared<cs::MatrixCompletion>();
  core::DrCellAgent agent(test_task->num_cells(), config);
  auto train_env =
      core::make_training_environment(training_task, engine, epsilon, config);
  std::cout << "training DR-Cell...\n";
  const auto training = core::train_agent(agent, train_env, 8);
  std::cout << "  done in " << format_double(training.seconds, 1) << " s\n\n";

  core::CampaignConfig campaign;
  campaign.epsilon = epsilon;
  campaign.p = p;
  campaign.env = config.env;
  campaign.env.history_cycles = config.history_cycles;

  core::DrCellPolicy drcell(agent);
  auto qbc = baselines::QbcSelector::make_default(*test_task, 41);
  baselines::RandomSelector random(42);

  TablePrinter table({"method", "avg cells/cycle", "of 36", "satisfaction",
                      "class. error"});
  std::vector<core::CampaignResult> results;
  for (baselines::CellSelector* selector :
       {static_cast<baselines::CellSelector*>(&drcell),
        static_cast<baselines::CellSelector*>(&qbc),
        static_cast<baselines::CellSelector*>(&random)}) {
    std::cout << "running testing stage with " << selector->name() << "...\n";
    auto r = core::run_campaign(test_task, engine, *selector, campaign);
    r.id = r.selector;
    table.add_row(r.selector,
                  {r.avg_cells_per_cycle,
                   100.0 * r.avg_cells_per_cycle / 36.0,
                   r.satisfaction_ratio, r.mean_cycle_error});
    results.push_back(std::move(r));
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\n(quality gate: at most 9 of 36 cells misclassified, "
               "p = 0.9; 'class. error' is the mean fraction of unsensed "
               "cells whose AQI category was inferred wrongly)\n";
  if (!json.empty() &&
      !core::write_campaign_json_file(json, "air_quality_campaign", results))
    return 1;
  return 0;
}
