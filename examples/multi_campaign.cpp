// Multi-campaign serving: one CampaignScheduler stepping a fleet of
// concurrent sensing campaigns — four frozen DR-Cell deployments sharing
// ONE trained agent (their Q-forwards are batched into a single
// forward_batch per wave) next to four RANDOM campaigns — then a
// stop/resume drill: checkpoint mid-flight, rebuild a fresh scheduler,
// resume, and verify the resumed fleet finishes bit-identical to the
// uninterrupted one.
//
// With --chaos the run becomes a fault-tolerance demo instead: deterministic
// faults are injected into the serving fleet (a persistent environment fault
// on one campaign, a transient one on another, and a NaN-poisoned shared
// agent mid-flight) and the scheduler's recovery — in-wave retry, campaign
// quarantine, checkpoint-ring rollback — is narrated through the incident
// log.
//
// Build & run:  ./build/example_multi_campaign [--json [path]] [--chaos]
#include <cstdio>
#include <cstring>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>

#include "baselines/random_selector.h"
#include "core/campaign_json.h"
#include "core/campaign_scheduler.h"
#include "core/checkpoint.h"
#include "core/policy.h"
#include "core/trainer.h"
#include "cs/matrix_completion.h"
#include "data/datasets.h"
#include "util/fault_injection.h"
#include "util/table.h"

using namespace drcell;

namespace {

core::CampaignConfig campaign_config(const core::DrCellConfig& config) {
  core::CampaignConfig campaign;
  campaign.epsilon = 0.3;
  campaign.p = 0.9;
  campaign.env = config.env;
  campaign.env.history_cycles = config.history_cycles;
  return campaign;
}

void populate(core::CampaignScheduler& scheduler,
              const std::shared_ptr<const mcs::SensingTask>& test_task,
              const core::CampaignConfig& campaign, core::DrCellAgent& agent) {
  const auto engine_factory = [] {
    return std::make_shared<cs::MatrixCompletion>();
  };
  for (int i = 0; i < 4; ++i) {
    char id[32];
    std::snprintf(id, sizeof(id), "drcell-%d", i);
    scheduler.add_campaign(id, campaign, test_task, engine_factory,
                           std::make_shared<core::DrCellPolicy>(agent));
  }
  for (int i = 0; i < 4; ++i) {
    char id[32];
    std::snprintf(id, sizeof(id), "random-%d", i);
    scheduler.add_campaign(
        id, campaign, test_task, engine_factory,
        std::make_shared<baselines::RandomSelector>(100 + i));
  }
}

bool same_result(const core::CampaignResult& a, const core::CampaignResult& b) {
  return a.id == b.id && a.cycles == b.cycles &&
         a.total_selected == b.total_selected &&
         a.mean_cycle_error == b.mean_cycle_error &&
         a.total_cost == b.total_cost &&
         a.stats.cycle_errors == b.stats.cycle_errors;
}

/// The --chaos drill: inject a persistent fault, a transient fault and a
/// mid-flight NaN poisoning into a serving fleet and narrate the recovery.
int run_chaos(const std::shared_ptr<const mcs::SensingTask>& test_task,
              const core::CampaignConfig& campaign, core::DrCellAgent& agent) {
  std::cout << "--- chaos mode ---------------------------------------------\n"
               "arming deterministic faults:\n"
               "  env.step@random-2                 every step  (persistent)\n"
               "  env.step@random-0  after=10,times=1  one transient fault\n";
  util::FaultInjection::disarm_all();
  util::FaultInjection::arm_from_string(
      "env.step@random-2;env.step@random-0:after=10,times=1");

  core::CampaignScheduler::Options options;
  options.fault.checkpoint_every_waves = 16;  // auto-snapshot ring
  options.fault.checkpoint_ring = 3;
  core::CampaignScheduler fleet(options);
  populate(fleet, test_task, campaign, agent);

  fleet.run(/*max_waves=*/30);
  std::cout << "\npoisoning the shared agent's weights with NaN at wave "
            << fleet.waves_completed() << "...\n";
  agent.trainer().online().parameters()[0]->value(0, 0) =
      std::numeric_limits<double>::quiet_NaN();
  fleet.run();
  util::FaultInjection::disarm_all();

  std::cout << "\nincident log:\n";
  for (const auto& incident : fleet.incidents())
    std::cout << "  wave " << incident.wave << "  ["
              << (incident.campaign.empty() ? "<fleet>" : incident.campaign)
              << "]  " << incident.kind << ": " << incident.detail << "\n";

  std::cout << "\n";
  TablePrinter table({"campaign", "state", "cells/cycle", "MAE (degC)"});
  for (const auto& r : fleet.results())
    table.add_row({r.id + " (" + r.selector + ")",
                   r.quarantined ? "QUARANTINED" : "serving",
                   format_double(r.avg_cells_per_cycle, 2),
                   format_double(r.mean_cycle_error, 2)});
  table.print(std::cout);

  const auto quarantined = fleet.quarantined_slots();
  const bool as_expected = quarantined.size() == 1 &&
                           fleet.results()[quarantined[0]].id == "random-2" &&
                           fleet.rollbacks() == 1;
  std::cout << "\n" << fleet.rollbacks() << " rollback(s), "
            << quarantined.size() << " campaign(s) quarantined; the other "
            << fleet.num_campaigns() - quarantined.size()
            << " finished untouched: "
            << (as_expected ? "recovery as expected" : "UNEXPECTED OUTCOME")
            << "\n";
  return as_expected ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool chaos = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
  const std::string json =
      chaos ? std::string()
            : core::campaign_json_path(argc, argv, "CAMPAIGN_multi.json");

  std::cout << "generating Sensor-Scope-like campus data (57 cells)...\n";
  const auto dataset = data::make_sensorscope_like(/*seed=*/2018);
  auto full = std::make_shared<const mcs::SensingTask>(
      dataset.temperature.slice_cycles(0, 96));
  auto training_task =
      std::make_shared<const mcs::SensingTask>(full->slice_cycles(0, 48));
  auto test_task =
      std::make_shared<const mcs::SensingTask>(full->slice_cycles(48, 96));

  core::DrCellConfig config;
  config.lstm_hidden = 32;
  config.dqn.epsilon = rl::EpsilonSchedule(1.0, 0.05, 2000);
  config.env.min_observations = 3;
  config.env.inference_window = 10;

  core::DrCellAgent agent(full->num_cells(), config);
  auto train_env = core::make_training_environment(
      training_task, std::make_shared<cs::MatrixCompletion>(), 0.3, config);
  std::cout << "training DR-Cell (3 episodes)...\n";
  const auto training = core::train_agent(agent, train_env, 3);
  std::cout << "  done in " << format_double(training.seconds, 1) << " s\n\n";

  const core::CampaignConfig campaign = campaign_config(config);

  if (chaos) return run_chaos(test_task, campaign, agent);

  // Fleet A runs uninterrupted.
  core::CampaignScheduler uninterrupted;
  populate(uninterrupted, test_task, campaign, agent);
  std::cout << "running 8 campaigns to completion (4 batched DR-Cell + 4 "
               "RANDOM)...\n";
  const std::size_t waves = uninterrupted.run();
  std::cout << "  " << waves << " waves\n";

  // Fleet B stops after 40 waves, checkpoints, and resumes in a fresh
  // scheduler built from the same registry.
  core::CampaignScheduler burst;
  populate(burst, test_task, campaign, agent);
  burst.run(/*max_waves=*/40);
  std::ostringstream checkpoint(std::ios::binary);
  core::save_checkpoint(burst, checkpoint);
  std::cout << "checkpointed after 40 waves (" << checkpoint.str().size()
            << " bytes); resuming in a fresh scheduler...\n";

  core::CampaignScheduler resumed;
  populate(resumed, test_task, campaign, agent);
  std::istringstream in(checkpoint.str(), std::ios::binary);
  core::load_checkpoint(resumed, in);
  resumed.run();

  const auto results = uninterrupted.results();
  const auto resumed_results = resumed.results();
  bool identical = results.size() == resumed_results.size();
  for (std::size_t i = 0; identical && i < results.size(); ++i)
    identical = same_result(results[i], resumed_results[i]) &&
                uninterrupted.action_log(i) == resumed.action_log(i);
  std::cout << "resumed fleet vs uninterrupted: "
            << (identical ? "bit-identical" : "MISMATCH") << "\n\n";

  TablePrinter table(
      {"campaign", "cells/cycle", "satisfaction", "MAE (degC)"});
  for (const auto& r : results)
    table.add_row(r.id + " (" + r.selector + ")",
                  {r.avg_cells_per_cycle, r.satisfaction_ratio,
                   r.mean_cycle_error});
  table.print(std::cout);
  std::cout << "\n(the four DR-Cell campaigns share one agent: each wave "
               "scores all four states with a single batched forward)\n";

  if (!json.empty() &&
      !core::write_campaign_json_file(json, "multi_campaign", results))
    return 1;
  return identical ? 0 : 1;
}
