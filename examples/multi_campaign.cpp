// Multi-campaign serving: one CampaignScheduler stepping a fleet of
// concurrent sensing campaigns — four frozen DR-Cell deployments sharing
// ONE trained agent (their Q-forwards are batched into a single
// forward_batch per wave) next to four RANDOM campaigns — then a
// stop/resume drill: checkpoint mid-flight, rebuild a fresh scheduler,
// resume, and verify the resumed fleet finishes bit-identical to the
// uninterrupted one.
//
// Build & run:  ./build/example_multi_campaign [--json [path]]
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>

#include "baselines/random_selector.h"
#include "core/campaign_json.h"
#include "core/campaign_scheduler.h"
#include "core/checkpoint.h"
#include "core/policy.h"
#include "core/trainer.h"
#include "cs/matrix_completion.h"
#include "data/datasets.h"
#include "util/table.h"

using namespace drcell;

namespace {

core::CampaignConfig campaign_config(const core::DrCellConfig& config) {
  core::CampaignConfig campaign;
  campaign.epsilon = 0.3;
  campaign.p = 0.9;
  campaign.env = config.env;
  campaign.env.history_cycles = config.history_cycles;
  return campaign;
}

void populate(core::CampaignScheduler& scheduler,
              const std::shared_ptr<const mcs::SensingTask>& test_task,
              const core::CampaignConfig& campaign, core::DrCellAgent& agent) {
  const auto engine_factory = [] {
    return std::make_shared<cs::MatrixCompletion>();
  };
  for (int i = 0; i < 4; ++i) {
    char id[32];
    std::snprintf(id, sizeof(id), "drcell-%d", i);
    scheduler.add_campaign(id, campaign, test_task, engine_factory,
                           std::make_shared<core::DrCellPolicy>(agent));
  }
  for (int i = 0; i < 4; ++i) {
    char id[32];
    std::snprintf(id, sizeof(id), "random-%d", i);
    scheduler.add_campaign(
        id, campaign, test_task, engine_factory,
        std::make_shared<baselines::RandomSelector>(100 + i));
  }
}

bool same_result(const core::CampaignResult& a, const core::CampaignResult& b) {
  return a.id == b.id && a.cycles == b.cycles &&
         a.total_selected == b.total_selected &&
         a.mean_cycle_error == b.mean_cycle_error &&
         a.total_cost == b.total_cost &&
         a.stats.cycle_errors == b.stats.cycle_errors;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json =
      core::campaign_json_path(argc, argv, "CAMPAIGN_multi.json");

  std::cout << "generating Sensor-Scope-like campus data (57 cells)...\n";
  const auto dataset = data::make_sensorscope_like(/*seed=*/2018);
  auto full = std::make_shared<const mcs::SensingTask>(
      dataset.temperature.slice_cycles(0, 96));
  auto training_task =
      std::make_shared<const mcs::SensingTask>(full->slice_cycles(0, 48));
  auto test_task =
      std::make_shared<const mcs::SensingTask>(full->slice_cycles(48, 96));

  core::DrCellConfig config;
  config.lstm_hidden = 32;
  config.dqn.epsilon = rl::EpsilonSchedule(1.0, 0.05, 2000);
  config.env.min_observations = 3;
  config.env.inference_window = 10;

  core::DrCellAgent agent(full->num_cells(), config);
  auto train_env = core::make_training_environment(
      training_task, std::make_shared<cs::MatrixCompletion>(), 0.3, config);
  std::cout << "training DR-Cell (3 episodes)...\n";
  const auto training = core::train_agent(agent, train_env, 3);
  std::cout << "  done in " << format_double(training.seconds, 1) << " s\n\n";

  const core::CampaignConfig campaign = campaign_config(config);

  // Fleet A runs uninterrupted.
  core::CampaignScheduler uninterrupted;
  populate(uninterrupted, test_task, campaign, agent);
  std::cout << "running 8 campaigns to completion (4 batched DR-Cell + 4 "
               "RANDOM)...\n";
  const std::size_t waves = uninterrupted.run();
  std::cout << "  " << waves << " waves\n";

  // Fleet B stops after 40 waves, checkpoints, and resumes in a fresh
  // scheduler built from the same registry.
  core::CampaignScheduler burst;
  populate(burst, test_task, campaign, agent);
  burst.run(/*max_waves=*/40);
  std::ostringstream checkpoint(std::ios::binary);
  core::save_checkpoint(burst, checkpoint);
  std::cout << "checkpointed after 40 waves (" << checkpoint.str().size()
            << " bytes); resuming in a fresh scheduler...\n";

  core::CampaignScheduler resumed;
  populate(resumed, test_task, campaign, agent);
  std::istringstream in(checkpoint.str(), std::ios::binary);
  core::load_checkpoint(resumed, in);
  resumed.run();

  const auto results = uninterrupted.results();
  const auto resumed_results = resumed.results();
  bool identical = results.size() == resumed_results.size();
  for (std::size_t i = 0; identical && i < results.size(); ++i)
    identical = same_result(results[i], resumed_results[i]) &&
                uninterrupted.action_log(i) == resumed.action_log(i);
  std::cout << "resumed fleet vs uninterrupted: "
            << (identical ? "bit-identical" : "MISMATCH") << "\n\n";

  TablePrinter table(
      {"campaign", "cells/cycle", "satisfaction", "MAE (degC)"});
  for (const auto& r : results)
    table.add_row(r.id + " (" + r.selector + ")",
                  {r.avg_cells_per_cycle, r.satisfaction_ratio,
                   r.mean_cycle_error});
  table.print(std::cout);
  std::cout << "\n(the four DR-Cell campaigns share one agent: each wave "
               "scores all four states with a single batched forward)\n";

  if (!json.empty() &&
      !core::write_campaign_json_file(json, "multi_campaign", results))
    return 1;
  return identical ? 0 : 1;
}
