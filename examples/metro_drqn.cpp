// DRQN training at the 10,000-cell metro tier — the workload the sparse
// one-hot gather path and the KNN candidate-subset action space exist for.
// A dense full-action train step at this size moves [32 x 10000] state
// matrices through the LSTM and scores a 10k-wide Q head every decision;
// the metro configuration instead stores transitions as sparse index lists,
// gathers the LSTM input GEMM over the ~hundreds of ones, and restricts
// every decision and bootstrap to a small candidate subset (KNN around
// the recent selections plus a seeded random slice — the trajectory-shift
// contract is documented in docs/ARCHITECTURE.md). The Q head is the
// spatial-feature variant (rl::SpatialDrqnQNetwork): at 10,000 actions a
// per-cell weight column would see a handful of gradient touches per run,
// so Q(s, a) is factored through fixed 2-D Fourier position features
// instead and every transition trains the whole head.
//
// Protocol: the DRQN trains *offline* on historical cycles the organiser
// holds full ground truth for (the paper's Sec. 5.3 preliminary study), so
// the reward can consult it: the environment's dense error-reduction
// shaping (EnvOptions::error_shaping) pays every selection its own marginal
// drop in true inference error, and training cycles run at exactly the
// deployment budget so the distribution the Q-values are fit on is the one
// the greedy policy will visit. Deployment then runs the trained greedy
// policy on held-out test cycles at the fixed budget and compares true MAE
// against RANDOM selection at the identical budget. The example exits
// non-zero unless the trained DRQN beats RANDOM on MAE — this is the CI
// acceptance gate for the metro training tier, and the MAE table is written
// as a JSON artifact.
//
// Build & run:  ./build/example_metro_drqn [--quick] [--json [path]]
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <utility>
#include <vector>

#include "baselines/random_selector.h"
#include "baselines/selector.h"
#include "core/campaign.h"
#include "cs/matrix_completion.h"
#include "data/datasets.h"
#include "mcs/candidate_set.h"
#include "mcs/environment.h"
#include "mcs/quality.h"
#include "rl/dqn_trainer.h"
#include "rl/spatial_drqn_qnetwork.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace drcell;

namespace {

constexpr std::size_t kWarmCycles = 48;
constexpr std::size_t kTrainCycles = 8;
constexpr std::size_t kTrainFieldWarm = 24;  // GT warm columns per train field
constexpr std::size_t kTestCycles = 16;  // MAE averages over all of them —
                                         // enough cycles to resolve a few
                                         // thousandths of a degree
// Fixed cells/cycle at deployment: 0.16% of the grid — a *scarce* budget,
// below the completion's effective rank. Design leverage grows as the
// budget shrinks: at several hundred cells/cycle the column-space
// regression is overdetermined and every reasonable policy converges to
// the same MAE, at 40 a careful packing beats random placement by ~5%,
// and at 16 every placement carries real information and the gap between
// a dispersed design and a random one is ~15% — the regime where a
// placement policy actually earns its keep. The ideal spacing
// (√(10000/16) ≈ 25 cells) also sits comfortably above the spatial head's
// ~10-cell kernel resolution, so the Q landscape can resolve the
// decisions the packing asks of it.
constexpr std::size_t kEvalBudget = 16;

/// One of the square grid's 8 dihedral symmetries applied to a flat state
/// index (step * cells + cell id; the per-step offset is preserved).
std::uint32_t d4_transform(std::uint32_t flat, std::size_t g, std::size_t n) {
  const std::uint32_t cells = static_cast<std::uint32_t>(n * n);
  const std::uint32_t offset = flat / cells * cells;
  const std::uint32_t cell = flat % cells;
  std::uint32_t x = cell % n, y = cell / n;
  if (g & 1) x = static_cast<std::uint32_t>(n - 1) - x;
  if (g & 2) y = static_cast<std::uint32_t>(n - 1) - y;
  if (g & 4) std::swap(x, y);
  return offset + y * static_cast<std::uint32_t>(n) + x;
}

/// Greedy candidate-subset policy around the trained DRQN: each decision
/// scores one generated candidate set (KNN + random slice over the current
/// unsensed cells) with B=1 sparse restricted forwards.
///
/// The score is the Q-value averaged over the grid's 8 dihedral
/// symmetries, Q̄(s, a) = mean_g Q(g·s, g·a). The metro field distribution
/// is invariant under these maps (square grid, isotropic covariance), so
/// the true action-value is too; averaging therefore preserves the learned
/// coverage-inhibition signal (which transforms with the state) while
/// cancelling whatever fixed spatial preference the finite-sample fit
/// picked up — the failure mode that otherwise concentrates a whole
/// cycle's picks along one ridge of the grid.
class MetroDrqnSelector final : public baselines::CellSelector {
 public:
  MetroDrqnSelector(rl::DqnTrainer& trainer, mcs::CandidateSetGenerator& gen,
                    std::size_t grid_side)
      : trainer_(trainer), gen_(gen), n_(grid_side) {}

  std::size_t select(const mcs::SparseMcsEnvironment& env) override {
    const auto& candidates = gen_.generate(env.unsensed_cells(), recent_);
    const std::vector<std::uint32_t> ones = env.state_ones();
    qsum_.assign(candidates.size(), 0.0);
    for (std::size_t g = 0; g < 8; ++g) {
      t_ones_.resize(ones.size());
      for (std::size_t i = 0; i < ones.size(); ++i)
        t_ones_[i] = d4_transform(ones[i], g, n_);
      std::sort(t_ones_.begin(), t_ones_.end());
      t_cands_.resize(candidates.size());
      for (std::size_t j = 0; j < candidates.size(); ++j)
        t_cands_[j] = d4_transform(candidates[j], g, n_);
      const auto q = trainer_.candidate_q_values(t_ones_, t_cands_);
      for (std::size_t j = 0; j < q.size(); ++j) qsum_[j] += q[j];
    }
    std::size_t best = 0;
    for (std::size_t j = 1; j < qsum_.size(); ++j)
      if (qsum_[j] > qsum_[best]) best = j;
    const std::size_t action = candidates[best];
    remember(action);
    return action;
  }

  std::string name() const override { return "DRQN (metro)"; }

 private:
  void remember(std::size_t action) {
    recent_.push_back(action);
    if (recent_.size() > 16) recent_.erase(recent_.begin());
  }

  rl::DqnTrainer& trainer_;
  mcs::CandidateSetGenerator& gen_;
  std::size_t n_;
  std::vector<std::uint32_t> t_ones_, t_cands_;
  std::vector<double> qsum_;
  std::vector<std::size_t> recent_;
};

std::string json_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") != 0) continue;
    if (i + 1 < argc && argv[i + 1][0] != '-') return argv[i + 1];
    return "metro_drqn_mae.json";
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  const std::string json = json_path(argc, argv);

  std::cout << "generating metro-scale data (10,000 cells, "
            << kWarmCycles + kTestCycles
            << " deployment cycles + training fields, Nyström sampler)...\n";
  Stopwatch gen_watch;
  const auto task =
      data::make_metro_scale_task(100, 100, kWarmCycles + kTestCycles);
  std::cout << "  done in " << format_double(gen_watch.elapsed_seconds(), 2)
            << " s\n";

  auto test_task = std::make_shared<const mcs::SensingTask>(
      task.slice_cycles(kWarmCycles, kWarmCycles + kTestCycles));

  // Training environments — offline, on historical fields whose ground
  // truth the organiser holds, so the reward can consult it. Cycles run at
  // exactly the deployment budget, and the dense error-reduction shaping
  // pays each selection its own marginal drop in true inference error; a
  // cycle's shaped rewards telescope to the total error reduction its
  // placements achieved, which is precisely what the deployment MAE
  // measures. The per-step cost is zeroed: at a fixed cycle length it is
  // the same constant for every policy — pure value baseline, no placement
  // signal.
  //
  // Each episode trains on a *different* historical field (fresh generator
  // seed), and the deployment field below is never trained on. This is the
  // load-bearing trick: any single field also rewards "sense where this
  // field's residuals run hottest" — a static per-field preference that
  // deploys as the classic repetition trap (the same cells win every
  // cycle, window coverage starves). Randomising the field across episodes
  // leaves that component no consistent gradient, while the field-
  // invariant signal — placements dispersed away from the already-covered
  // regions span the completion's column space best — survives and is
  // exactly what the spatial-feature head can express.
  mcs::EnvOptions train_env_opts;
  // One history cycle: the windowed completion re-solves every cycle
  // against its own observations, so a cycle's inference error depends on
  // the dispersion of *this* cycle's design — the current partial selection
  // vector is the whole sufficient statistic. Feeding the previous cycle's
  // selections too teaches the net cross-cycle novelty ("avoid where we
  // sensed last time"), which squeezes each cycle's 40 picks into the
  // complement of the last ones — exactly the clustering that leaves the
  // column-space regression ill-conditioned.
  train_env_opts.history_cycles = 1;
  train_env_opts.inference_window = kTrainFieldWarm;
  // Shaping from the very first observation: the warm-start columns keep
  // the completion well-posed at any coverage, and a cycle's first few
  // placements are exactly where dispersion buys the most error reduction
  // — leaving them rewardless (the default guard) trains the early-cycle
  // states, the ones every deployment cycle starts from, on extrapolation.
  train_env_opts.min_observations = 1;
  train_env_opts.max_selections_per_cycle = kEvalBudget;
  train_env_opts.cost = 0.0;
  // Typical per-step error deltas on these fields at the 40-cell budget
  // are ~1e-3..1e-2 degC; the scale lands them near the Huber loss's unit
  // region.
  train_env_opts.error_shaping = 100.0;
  // Ground-truth gate: the paper's training-stage quality check. 0.25 sits
  // well below what a 40-cell budget achieves on these fields (~0.6), so
  // cycles run the full fixed budget; a (rare) early satisfaction earns a
  // modest bonus instead of the +10,000 R = m default, which would swamp
  // the shaped TD targets.
  train_env_opts.reward_bonus = 10.0;

  // Many short episodes, each on its own field: the static per-field
  // preference only averages out across distinct fields, so field diversity
  // buys more than extra cycles on the same one.
  const std::size_t episodes = quick ? 1 : 20;
  std::vector<std::unique_ptr<mcs::SparseMcsEnvironment>> train_envs;
  for (std::size_t f = 0; f < episodes; ++f) {
    const auto field = data::make_metro_scale_task(
        100, 100, kTrainFieldWarm + kTrainCycles, 20180 + f);
    auto field_task = std::make_shared<const mcs::SensingTask>(
        field.slice_cycles(kTrainFieldWarm, kTrainFieldWarm + kTrainCycles));
    mcs::EnvOptions opts = train_env_opts;
    opts.warm_start = field.slice_cycles(0, kTrainFieldWarm).ground_truth();
    train_envs.push_back(std::make_unique<mcs::SparseMcsEnvironment>(
        field_task, std::make_shared<cs::MatrixCompletion>(),
        std::make_shared<mcs::GroundTruthGate>(0.25), opts));
  }

  mcs::CandidateSetOptions cand_opts;
  // Small, mostly-random pools: the KNN slice anchors exploitation around
  // the spatial frontier, but completion quality rewards dispersion, so the
  // exploration slice dominates the mix, and a tighter subset keeps the
  // per-decision distribution closer to the stratified sampling that low-
  // rank recovery wants while still leaving the argmax real choices.
  cand_opts.subset_size = 32;
  cand_opts.random_fraction = 0.75;
  cand_opts.seed = 2018;
  mcs::CandidateSetGenerator generator(task.coords(), cand_opts);

  rl::DqnOptions opt;
  opt.candidate_training = true;
  opt.batch_size = 32;
  opt.min_replay = 128;
  opt.replay_capacity = 8192;
  // The shaped reward already pays each placement its own marginal error
  // reduction, so the per-step credit is immediate and gamma = 0 turns the
  // Q fit into pure expected-reward regression. The rewards are noisy
  // (per-step ALS error deltas); any bootstrap term would push that noise
  // through a max over candidates — a positive-bias feedback loop that
  // destabilised training badly here — for no extra signal.
  opt.gamma = 0.0;
  // With gamma = 0 there is no bootstrap, so off-policy data is free: the
  // long random phase scores candidates against an unbiased sample of
  // placements. But the fit is only trustworthy on states the behaviour
  // visited — a purely random policy never produces the states the greedy
  // argmax drifts into (its own residual-preference clusters), and there
  // the regression is unconstrained extrapolation. The tail of the decay
  // trains mostly on-policy so those states enter the replay and their
  // near-zero marginal rewards pull the cluster picks back down.
  opt.epsilon = {1.0, 0.3, 1500};
  // Huber width tuned to the *late-cycle* reward scale (~0..5), where the
  // placement-dependent differences actually live. The default delta of 1
  // turns the fit into a median regression that throws the dispersion
  // advantage (a mean effect) away; a very wide delta lets the huge,
  // placement-independent first-observation rewards dominate every
  // gradient instead, and the inhibition signal drowns.
  opt.huber_delta = 5.0;
  Rng net_rng(7);
  // Spatial-feature head on the 100 x 100 metro grid: fourier_k = 5 gives a
  // 121-dim feature space with ~10-cell spatial resolution — matched to
  // the field's 15-cell correlation length and comfortably below the
  // budget's ~25-cell packing spacing, so the head can resolve the
  // close-range redundancy penalty (sensing near an already-sensed cell
  // buys almost nothing). The LSTM hidden must be at least as wide as the
  // feature space: coverage inhibition — score a cell by how little its
  // φ(a) aligns with the current coverage summary — has to pass through
  // the trunk linearly, and a narrower hidden state bottlenecks it away.
  auto net = std::make_unique<rl::SpatialDrqnQNetwork>(
      100, 100, train_env_opts.history_cycles, 128, 5, 0, net_rng);
  rl::DqnTrainer trainer(std::move(net), opt, 11);

  std::cout << "training DRQN (candidate subsets of "
            << cand_opts.subset_size << ", sparse replay) for " << episodes
            << " episode(s) x " << kTrainCycles << " cycles...\n";
  Stopwatch train_watch;
  std::vector<std::size_t> recent;
  for (std::size_t ep = 0; ep < episodes; ++ep) {
    mcs::SparseMcsEnvironment& env = *train_envs[ep];
    env.reset();
    recent.clear();
    double loss_sum = 0.0;
    std::size_t steps = 0;
    while (!env.episode_done()) {
      std::vector<std::uint32_t> state_ones = env.state_ones();
      const auto& candidates = generator.generate(env.unsensed_cells(),
                                                  recent);
      const std::size_t action =
          trainer.select_action_candidates(state_ones, candidates);
      const mcs::StepResult result = env.step(action);
      recent.push_back(action);
      if (recent.size() > 16) recent.erase(recent.begin());

      rl::Experience e;
      e.sparse_states = true;
      e.state_ones = std::move(state_ones);
      e.action = action;
      e.reward = result.reward;
      e.terminal = result.episode_done;
      e.next_state_ones = env.state_ones();
      if (!result.episode_done)
        e.next_candidates =
            generator.generate(env.unsensed_cells(), recent);
      trainer.observe(std::move(e));
      loss_sum += trainer.train_step();
      ++steps;
    }
    double err_sum = 0.0;
    for (double err : env.stats().cycle_errors) err_sum += err;
    std::cout << "  episode " << ep + 1 << ": " << steps << " env steps, "
              << "mean train-cycle MAE "
              << format_double(
                     err_sum /
                         static_cast<double>(env.stats().cycle_errors.size()),
                     4)
              << ", mean TD loss "
              << format_double(loss_sum / static_cast<double>(steps), 4)
              << ", epsilon "
              << format_double(trainer.current_epsilon(), 2) << "\n";
  }
  // Offline refinement: env steps pay a full ALS completion each (that is
  // where the wall clock goes), gradient steps are nearly free — and at
  // gamma = 0 the objective is a fixed supervised regression over the
  // collected transitions, so extra passes over the replay buffer keep
  // averaging reward noise out of the fit long after collection stops.
  const std::size_t offline_steps = quick ? 0 : 8000;
  double offline_loss = 0.0;
  for (std::size_t i = 0; i < offline_steps; ++i)
    offline_loss += trainer.train_step();
  if (offline_steps > 0)
    std::cout << "  offline refinement: " << offline_steps
              << " extra gradient steps, mean loss "
              << format_double(offline_loss / static_cast<double>(offline_steps),
                               4)
              << "\n";
  std::cout << "  trained in " << format_double(train_watch.elapsed_seconds(), 1)
            << " s (" << trainer.train_steps() << " gradient steps)\n";

  // Deployment: fixed budget per cycle so the MAE comparison isolates
  // *placement* quality — both policies sense exactly kEvalBudget cells.
  core::CampaignConfig campaign;
  campaign.epsilon = 1.0;
  campaign.p = 0.9;
  campaign.env.history_cycles = train_env_opts.history_cycles;
  campaign.env.inference_window = kWarmCycles;
  campaign.env.min_observations = kEvalBudget;
  campaign.env.max_selections_per_cycle = kEvalBudget;
  campaign.env.warm_start = task.slice_cycles(0, kWarmCycles).ground_truth();

  std::cout << "\ndeploying on " << kTestCycles
            << " held-out cycles at a fixed budget of " << kEvalBudget
            << " cells/cycle...\n";
  // Fresh generator so the deployment candidate stream does not depend on
  // where training left the shared RNG.
  mcs::CandidateSetGenerator deploy_generator(task.coords(), cand_opts);
  MetroDrqnSelector drqn_policy(trainer, deploy_generator, 100);
  const auto drqn = core::run_campaign(
      test_task, std::make_shared<cs::MatrixCompletion>(), drqn_policy,
      campaign);
  baselines::RandomSelector random(7);
  const auto rnd = core::run_campaign(
      test_task, std::make_shared<cs::MatrixCompletion>(), random, campaign);

  TablePrinter table(
      {"method", "cells/cycle", "MAE (degC)", "satisfaction", "cycles/s"});
  for (const auto* r : {&drqn, &rnd})
    table.add_row(r->selector,
                  {r->avg_cells_per_cycle, r->mean_cycle_error,
                   r->satisfaction_ratio,
                   static_cast<double>(r->cycles) / r->seconds});
  table.print(std::cout);
  std::cout << "\n";

  if (!json.empty()) {
    std::ofstream out(json);
    out << "{\n  \"example\": \"metro_drqn\",\n  \"cells\": "
        << task.num_cells() << ",\n  \"eval_budget\": " << kEvalBudget
        << ",\n  \"quick\": " << (quick ? "true" : "false")
        << ",\n  \"drqn_mae\": " << drqn.mean_cycle_error
        << ",\n  \"random_mae\": " << rnd.mean_cycle_error
        << ",\n  \"train_seconds\": " << train_watch.elapsed_seconds()
        << ",\n  \"train_steps\": " << trainer.train_steps() << "\n}\n";
    std::cout << "wrote " << json << "\n";
  }

  const bool beats_random = drqn.mean_cycle_error < rnd.mean_cycle_error;
  std::cout << (beats_random
                    ? "trained DRQN beats RANDOM on MAE at 10,000 cells\n"
                    : "FAIL: trained DRQN did not beat RANDOM on MAE\n");
  if (quick) return 0;  // smoke runs skip the acceptance gate
  return beats_random ? 0 : 1;
}
