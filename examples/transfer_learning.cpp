// Transfer learning between correlated tasks (Sec. 4.4 / Fig. 7): a DRQN
// trained on *temperature* bootstraps the cell-selection policy for
// *humidity*, for which only 10 cycles (5 hours) of training data exist.
//
// Four arms, as in the paper:
//   TRANSFER     source weights + fine-tuning on the 10 target cycles
//   NO-TRANSFER  source weights applied unchanged
//   SHORT-TRAIN  fresh agent trained only on the 10 target cycles
//   RANDOM       no learning at all
//
// Build & run:  ./build/examples/transfer_learning
#include <iostream>
#include <memory>

#include "baselines/random_selector.h"
#include "core/campaign.h"
#include "core/policy.h"
#include "core/trainer.h"
#include "core/transfer.h"
#include "cs/matrix_completion.h"
#include "data/datasets.h"
#include "util/table.h"

using namespace drcell;

int main() {
  std::cout << "generating correlated temperature/humidity fields...\n";
  const auto dataset = data::make_sensorscope_like(/*seed=*/2018);
  auto source_task = std::make_shared<const mcs::SensingTask>(
      dataset.temperature.slice_cycles(0, 96));  // 2 days of source data
  const auto target_full = dataset.humidity.slice_cycles(0, 144);
  auto target_test = std::make_shared<const mcs::SensingTask>(
      target_full.slice_cycles(10, 106));  // testing stage

  const double source_epsilon = 0.3;  // degC
  const double target_epsilon = 1.5;  // % relative humidity (paper's bound)
  const double p = 0.9;

  core::DrCellConfig config;
  config.lstm_hidden = 48;
  config.dqn.epsilon = rl::EpsilonSchedule(1.0, 0.05, 3000);
  config.env.min_observations = 3;
  config.env.inference_window = 10;

  auto engine = std::make_shared<cs::MatrixCompletion>();

  std::cout << "training the source (temperature) agent...\n";
  core::DrCellAgent source(source_task->num_cells(), config);
  auto source_env = core::make_training_environment(source_task, engine,
                                                    source_epsilon, config);
  core::train_agent(source, source_env, 6);

  core::TransferOptions transfer_options;
  transfer_options.target_training_cycles = 10;  // 5 hours of humidity data
  transfer_options.fine_tune_episodes = 8;
  transfer_options.epsilon = target_epsilon;

  std::cout << "building the four arms...\n";
  auto transferred =
      core::transfer_agent(source, target_full, engine, transfer_options);
  auto short_trained =
      core::short_train_agent(config, target_full, engine, transfer_options);
  // NO-TRANSFER: source weights, no fine-tuning.
  core::DrCellAgent no_transfer(source.num_cells(), config);
  source.copy_weights_to(no_transfer);

  core::CampaignConfig campaign;
  campaign.epsilon = target_epsilon;
  campaign.p = p;
  campaign.env = config.env;
  campaign.env.history_cycles = config.history_cycles;

  core::DrCellPolicy transfer_policy(transferred);
  core::DrCellPolicy no_transfer_policy(no_transfer);
  core::DrCellPolicy short_train_policy(short_trained);
  baselines::RandomSelector random(77);

  struct Arm {
    const char* name;
    baselines::CellSelector* selector;
  };
  const Arm arms[] = {{"TRANSFER", &transfer_policy},
                      {"NO-TRANSFER", &no_transfer_policy},
                      {"SHORT-TRAIN", &short_train_policy},
                      {"RANDOM", &random}};

  TablePrinter table({"arm", "avg cells/cycle", "satisfaction"});
  for (const auto& arm : arms) {
    std::cout << "running testing stage: " << arm.name << "...\n";
    const auto r =
        core::run_campaign(target_test, engine, *arm.selector, campaign);
    table.add_row(arm.name, {r.avg_cells_per_cycle, r.satisfaction_ratio});
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\n(target task: humidity, (1.5%, 0.9)-quality; TRANSFER "
               "should need the fewest cells)\n";
  return 0;
}
