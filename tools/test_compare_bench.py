#!/usr/bin/env python3
"""Self-test for tools/compare_bench.py.

compare_bench.py is the CI perf gate; a bug here silently disarms every
speedup regression check, so the branch behaviour (NEW ops, missing ops,
--min-baseline ungating, the regression threshold itself, --ops typo
protection, quick-mode refusal) is pinned by this suite. Stdlib-only and
registered with CTest as `compare_bench_selftest` (guarded on a Python3
interpreter being found).

Run directly:  python3 tools/test_compare_bench.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_bench.py")


def report(ops, quick=False):
    """Build a BENCH_*.json payload: {op_name: speedup_vs_naive}."""
    return {
        "quick": quick,
        "entries": [
            {"op": name, "speedup_vs_naive": speedup}
            for name, speedup in ops.items()
        ],
    }


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as f:
            json.dump(payload, f)
        return path

    def run_compare(self, baseline, fresh, *extra):
        cmd = [sys.executable, SCRIPT, "--baseline", baseline,
               "--fresh", fresh, *extra]
        return subprocess.run(cmd, capture_output=True, text=True)

    def test_no_regression_passes(self):
        base = self.write("base.json", report({"matmul": 4.0, "lstm": 3.0}))
        fresh = self.write("fresh.json", report({"matmul": 4.1, "lstm": 2.9}))
        r = self.run_compare(base, fresh)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("no perf regressions", r.stdout)

    def test_regression_beyond_threshold_fails(self):
        base = self.write("base.json", report({"matmul": 4.0}))
        fresh = self.write("fresh.json", report({"matmul": 2.0}))  # -50%
        r = self.run_compare(base, fresh, "--max-regression-pct", "20")
        self.assertEqual(r.returncode, 1, r.stdout)
        self.assertIn("REGRESSION", r.stdout)

    def test_regression_within_threshold_passes(self):
        base = self.write("base.json", report({"matmul": 4.0}))
        fresh = self.write("fresh.json", report({"matmul": 3.5}))  # -12.5%
        r = self.run_compare(base, fresh, "--max-regression-pct", "20")
        self.assertEqual(r.returncode, 0, r.stdout)

    def test_baseline_op_missing_from_fresh_fails(self):
        # A silently dropped measurement must not disarm its gate.
        base = self.write("base.json", report({"matmul": 4.0, "lstm": 3.0}))
        fresh = self.write("fresh.json", report({"matmul": 4.0}))
        r = self.run_compare(base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout)
        self.assertIn("missing from fresh report", r.stdout)

    def test_missing_op_fails_even_when_ungated(self):
        # --min-baseline ungates the *ratio*, not the existence check.
        base = self.write("base.json", report({"pooled": 1.1}))
        fresh = self.write("fresh.json", report({}))
        r = self.run_compare(base, fresh, "--min-baseline", "1.5")
        self.assertEqual(r.returncode, 1, r.stdout)
        self.assertIn("missing from fresh report", r.stdout)

    def test_min_baseline_ungates_noisy_ratio(self):
        # Baseline speedup 1.1x is below --min-baseline: even a large drop
        # in the fresh ratio must not fail (it is noise, not a regression).
        base = self.write("base.json", report({"pooled": 1.1, "matmul": 4.0}))
        fresh = self.write("fresh.json", report({"pooled": 0.5, "matmul": 4.0}))
        r = self.run_compare(base, fresh, "--min-baseline", "1.5")
        self.assertEqual(r.returncode, 0, r.stdout)
        self.assertIn("ungated: baseline ~1x", r.stdout)

    def test_new_op_reported_not_failed(self):
        base = self.write("base.json", report({"matmul": 4.0}))
        fresh = self.write("fresh.json", report({"matmul": 4.0, "gather": 5.0}))
        r = self.run_compare(base, fresh)
        self.assertEqual(r.returncode, 0, r.stdout)
        self.assertIn("(NEW)", r.stdout)

    def test_new_gated_op_arms_once_baselined(self):
        # An --ops entry present only in the fresh run is the add-a-bench-op
        # flow: passes now, gate arms when the regenerated baseline lands.
        base = self.write("base.json", report({"matmul": 4.0}))
        fresh = self.write("fresh.json", report({"matmul": 4.0, "gather": 5.0}))
        r = self.run_compare(base, fresh, "--ops", "matmul,gather")
        self.assertEqual(r.returncode, 0, r.stdout)
        self.assertIn("NEW: gated once baselined", r.stdout)

    def test_ops_entry_in_neither_report_fails(self):
        # Typo protection: a gate that matches nothing is disarmed forever.
        base = self.write("base.json", report({"matmul": 4.0}))
        fresh = self.write("fresh.json", report({"matmul": 4.0}))
        r = self.run_compare(base, fresh, "--ops", "matmul,matmlu_320")
        self.assertEqual(r.returncode, 1, r.stdout)
        self.assertIn("neither report", r.stdout)

    def test_ungated_op_regression_does_not_fail(self):
        base = self.write("base.json", report({"matmul": 4.0, "wild": 6.0}))
        fresh = self.write("fresh.json", report({"matmul": 4.0, "wild": 1.0}))
        r = self.run_compare(base, fresh, "--ops", "matmul")
        self.assertEqual(r.returncode, 0, r.stdout)
        self.assertIn("ungated: not in --ops", r.stdout)

    def test_quick_mode_report_refused(self):
        base = self.write("base.json", report({"matmul": 4.0}))
        fresh = self.write("fresh.json", report({"matmul": 4.0}, quick=True))
        r = self.run_compare(base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout)
        self.assertIn("quick-mode", r.stdout)

    def test_empty_baseline_refused(self):
        base = self.write("base.json", report({}))
        fresh = self.write("fresh.json", report({"matmul": 4.0}))
        r = self.run_compare(base, fresh)
        self.assertEqual(r.returncode, 1, r.stdout)
        self.assertIn("no speedup_vs_naive entries", r.stdout)


if __name__ == "__main__":
    unittest.main()
