#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json report against a committed baseline.

CI runs the micro bench AND the 1000-cell scale bench on every push and
fails the build when an optimised path regressed by more than the allowed
fraction. Raw wall times are not comparable across machines (the committed
baseline and the CI runner differ), so the comparison uses
`speedup_vs_naive`: both the optimised path and its retained naive reference
are measured in the same process on the same hardware, making the ratio a
machine-portable figure of merit. An op present in the baseline but missing
from the fresh report is an error (a silently dropped measurement would
otherwise disable its gate). The reverse is tolerated: ops present in the
run but absent from the baseline — including entries named in --ops — are
reported as NEW instead of failing, so adding a bench op does not require a
lock-step baseline edit; the gate arms itself once the regenerated baseline
lands. An --ops entry found in neither report is still an error (typo
protection).

Exit code 0 = no regression, 1 = regression or malformed report.

Usage:
  tools/compare_bench.py --baseline BENCH_micro.json --fresh BENCH_micro_ci.json \
      [--max-regression-pct 20] [--ops op1,op2]
  tools/compare_bench.py --baseline BENCH_scale_1000cell.json \
      --fresh BENCH_scale_1000cell_ci.json --max-regression-pct 40 \
      --ops scale_selection_pick

The gate policy (which ops are in --ops and why) is documented in
bench/README.md.
"""

import argparse
import json
import sys


def load_speedups(path):
    with open(path) as f:
        report = json.load(f)
    return {
        e["op"]: e["speedup_vs_naive"]
        for e in report.get("entries", [])
        if "speedup_vs_naive" in e
    }, report.get("quick", False)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument(
        "--max-regression-pct",
        type=float,
        default=20.0,
        help="fail when a speedup drops more than this percentage below "
        "the baseline's (default 20)",
    )
    parser.add_argument(
        "--min-baseline",
        type=float,
        default=1.5,
        help="only gate ops whose baseline speedup is at least this; "
        "ratios near 1.0 (e.g. a pooled path on a single-core baseline "
        "machine) are noise, not an optimisation to defend (default 1.5)",
    )
    parser.add_argument(
        "--ops",
        default=None,
        help="comma-separated allowlist of ops to gate; others are "
        "reported but never fail the comparison. Use for ratios that are "
        "not microarchitecture-portable enough for a hard cross-machine "
        "gate. Missing-op detection still covers every baseline op.",
    )
    args = parser.parse_args()
    gated_ops = set(args.ops.split(",")) if args.ops else None

    baseline, base_quick = load_speedups(args.baseline)
    fresh, fresh_quick = load_speedups(args.fresh)
    if not baseline:
        print(f"error: no speedup_vs_naive entries in {args.baseline}")
        return 1
    if base_quick or fresh_quick:
        # Quick-mode budgets are too short for stable ratios; refuse rather
        # than gate on noise (bench/README.md documents this).
        print("error: refusing to compare quick-mode reports")
        return 1
    if gated_ops is not None:
        # A gated op the baseline does not know yet is fine *if* the run
        # produces it (a freshly added bench op whose baseline regeneration
        # lands with or after the CI change); it is reported as NEW below
        # and the gate arms once the baseline is regenerated. An op in
        # neither report is a typo or a rename and would silently
        # neutralise its gate forever — still an error.
        unknown = gated_ops - set(baseline) - set(fresh)
        if unknown:
            print(f"error: --ops entries in neither report: "
                  f"{', '.join(sorted(unknown))}")
            return 1

    floor = 1.0 - args.max_regression_pct / 100.0
    failures = []
    print(f"{'op':<42} {'baseline':>9} {'fresh':>9} {'ratio':>7}")
    for op, base in sorted(baseline.items()):
        if gated_ops is not None and op not in gated_ops:
            if op not in fresh:
                print(f"{op:<42} {base:>9.2f} {'MISSING':>9}")
                failures.append(f"{op}: missing from fresh report")
            else:
                print(f"{op:<42} {base:>9.2f} {fresh[op]:>9.2f}"
                      "  (ungated: not in --ops)")
            continue
        if base < args.min_baseline:
            # The ratio is not gated, but the measurement must still exist —
            # a silently dropped op would otherwise vanish unnoticed.
            if op not in fresh:
                print(f"{op:<42} {base:>9.2f} {'MISSING':>9}")
                failures.append(f"{op}: missing from fresh report")
            else:
                print(f"{op:<42} {base:>9.2f} {fresh[op]:>9.2f}"
                      "  (ungated: baseline ~1x)")
            continue
        if op not in fresh:
            print(f"{op:<42} {base:>9.2f} {'MISSING':>9}")
            failures.append(f"{op}: missing from fresh report")
            continue
        ratio = fresh[op] / base
        flag = "" if ratio >= floor else "  << REGRESSION"
        print(f"{op:<42} {base:>9.2f} {fresh[op]:>9.2f} {ratio:>6.2f}x{flag}")
        if ratio < floor:
            failures.append(
                f"{op}: speedup {fresh[op]:.2f}x vs baseline {base:.2f}x "
                f"({(1 - ratio) * 100:.0f}% regression, "
                f"allowed {args.max_regression_pct:.0f}%)"
            )
    for op in sorted(set(fresh) - set(baseline)):
        gated_note = (
            "  (NEW: gated once baselined)"
            if gated_ops is not None and op in gated_ops
            else "  (NEW)"
        )
        print(f"{op:<42} {'--':>9} {fresh[op]:>9.2f}{gated_note}")

    if failures:
        print("\nPERF REGRESSION vs committed baseline:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nno perf regressions vs committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
